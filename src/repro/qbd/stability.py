"""Stability (positive recurrence) of the repeating portion of a QBD.

Theorem 4.4 of the paper: when the generator ``A = A0 + A1 + A2`` of
the phase process is irreducible with stationary vector ``y``
(``y A = 0``, ``y e = 1``), the QBD is positive recurrent iff the mean
upward drift is smaller than the mean downward drift::

    y A0 e < y A2 e .

This is equivalent to ``sp(R) < 1`` (Neuts 1981).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReducibleChainError
from repro.utils.linalg import solve_stationary_gth

__all__ = ["drift", "is_stable", "DriftReport"]


@dataclass(frozen=True)
class DriftReport:
    """Outcome of the mean-drift stability test.

    Attributes
    ----------
    up:
        Mean upward rate ``y A0 e``.
    down:
        Mean downward rate ``y A2 e``.
    phase_stationary:
        Stationary vector ``y`` of ``A0 + A1 + A2``.
    """

    up: float
    down: float
    phase_stationary: np.ndarray

    @property
    def drift(self) -> float:
        """Net drift ``up - down``; negative means stable."""
        return self.up - self.down

    @property
    def stable(self) -> bool:
        return self.drift < 0.0

    @property
    def traffic_intensity(self) -> float:
        """``rho = up / down``; stable iff ``< 1``."""
        return self.up / self.down if self.down > 0 else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "stable" if self.stable else "UNSTABLE"
        return (f"DriftReport(up={self.up:.6g}, down={self.down:.6g}, "
                f"rho={self.traffic_intensity:.6g}, {verdict})")


def drift(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray) -> DriftReport:
    """Run the Theorem 4.4 drift test on the repeating blocks.

    Raises :class:`~repro.errors.ReducibleChainError` when the phase
    generator ``A0 + A1 + A2`` is reducible (the paper requires
    irreducible PH representations precisely so this cannot happen).
    """
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    A = A0 + A1 + A2
    try:
        y = solve_stationary_gth(A)
    except ReducibleChainError as exc:
        raise ReducibleChainError(
            "phase process A0+A1+A2 is reducible; use irreducible PH "
            "representations (PhaseType.trimmed() can help)"
        ) from exc
    up = float(y @ A0.sum(axis=1))
    down = float(y @ A2.sum(axis=1))
    return DriftReport(up=up, down=down, phase_stationary=y)


def is_stable(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray) -> bool:
    """Whether the QBD with these repeating blocks is positive recurrent."""
    return drift(A0, A1, A2).stable
