"""QBD process description and structural validation.

The process mirrors eq. (20) of the paper.  Levels ``0..b`` form the
(possibly level-dependent) *boundary*; levels ``b, b+1, b+2, ...`` are
the *repeating portion* with blocks ``(A0, A1, A2)``.  The last
boundary level ``b`` must have the same phase dimension as the
repeating levels: transitions ``b -> b+1`` use ``A0`` and
``b+1 -> b`` use ``A2``.

In the gang-scheduling model, ``b = c_p = P / g(p)`` (the number of
partitions available to class ``p``) and the boundary levels have
growing phase spaces as jobs fill the partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import as_float_array

__all__ = ["QBDProcess"]


@dataclass(frozen=True)
class QBDProcess:
    """A continuous-time QBD with a level-dependent boundary.

    Parameters
    ----------
    boundary:
        ``boundary[i][j]`` is the transition block from boundary level
        ``i`` to boundary level ``j`` for ``|i - j| <= 1``; entries for
        non-adjacent pairs must be ``None``.  ``boundary[i][i]``
        contains the level's diagonal (including the negative exit
        rates).  The list length is ``b + 1``.
    A0, A1, A2:
        Repeating blocks: up / local / down.  ``A1`` carries the
        diagonal.  All are ``d x d`` with ``d`` equal to the phase
        dimension of boundary level ``b``.

    Notes
    -----
    Validation checks block shapes, sign patterns, and that every row
    of the (conceptually infinite) generator sums to zero:

    * boundary level ``i < b``: rows of ``[B[i][i-1] B[i][i] B[i][i+1]]``;
    * boundary level ``b``: rows of ``[B[b][b-1] B[b][b] A0]``;
    * repeating levels: rows of ``[A2 A1 A0]``.
    """

    boundary: tuple[tuple[np.ndarray | None, ...], ...]
    A0: np.ndarray
    A1: np.ndarray
    A2: np.ndarray
    #: Optional labels, one list per boundary level plus one for the
    #: repeating phase space, for debugging / diagram export.
    level_labels: tuple | None = field(default=None, compare=False)

    def __post_init__(self):
        A0 = as_float_array(self.A0, ndim=2, name="A0")
        A1 = as_float_array(self.A1, ndim=2, name="A1")
        A2 = as_float_array(self.A2, ndim=2, name="A2")
        d = A1.shape[0]
        for name, M in (("A0", A0), ("A1", A1), ("A2", A2)):
            if M.shape != (d, d):
                raise ValidationError(
                    f"{name} must be {d}x{d} to match A1, got {M.shape}"
                )
        if np.any(A0 < 0) or np.any(A2 < 0):
            raise ValidationError("A0 and A2 must be non-negative rate blocks")
        off = A1.copy()
        np.fill_diagonal(off, 0.0)
        if np.any(off < 0):
            raise ValidationError("A1 must have non-negative off-diagonal entries")

        boundary = tuple(tuple(row) for row in self.boundary)
        b = len(boundary) - 1
        if b < 0:
            raise ValidationError("boundary must contain at least one level")
        dims = []
        for i, row in enumerate(boundary):
            if len(row) != b + 1:
                raise ValidationError(
                    f"boundary row {i} has {len(row)} entries, expected {b + 1}"
                )
            if row[i] is None:
                raise ValidationError(f"boundary diagonal block [{i}][{i}] missing")
            dims.append(as_float_array(row[i], ndim=2, name=f"B[{i}][{i}]").shape[0])
        if dims[b] != d:
            raise ValidationError(
                f"last boundary level has phase dim {dims[b]}, repeating blocks have {d}"
            )
        # Shape and adjacency checks.
        coerced: list[list[np.ndarray | None]] = []
        for i in range(b + 1):
            crow: list[np.ndarray | None] = []
            for j in range(b + 1):
                blk = boundary[i][j]
                if abs(i - j) > 1:
                    if blk is not None:
                        raise ValidationError(
                            f"non-adjacent boundary block [{i}][{j}] must be None"
                        )
                    crow.append(None)
                    continue
                if blk is None:
                    crow.append(None)
                    continue
                blk = as_float_array(blk, ndim=2, name=f"B[{i}][{j}]")
                if blk.shape != (dims[i], dims[j]):
                    raise ValidationError(
                        f"B[{i}][{j}] must be {dims[i]}x{dims[j]}, got {blk.shape}"
                    )
                if i != j and np.any(blk < 0):
                    raise ValidationError(
                        f"off-diagonal boundary block [{i}][{j}] must be non-negative"
                    )
                crow.append(blk)
            coerced.append(crow)

        # Row-sum (generator) checks.
        scale = max(1.0, float(np.max(np.abs(A1))))
        tol = 1e-8 * scale * max(d, 1)

        def _rowsum(parts):
            return sum(p.sum(axis=1) for p in parts if p is not None)

        for i in range(b + 1):
            parts = [coerced[i][j] for j in range(max(0, i - 1), min(b, i + 1) + 1)]
            if i == b:
                parts.append(A0)
            rows = _rowsum(parts)
            if np.any(np.abs(rows) > tol):
                k = int(np.argmax(np.abs(rows)))
                raise ValidationError(
                    f"boundary level {i} row {k} sums to {rows[k]:.3e}, expected 0"
                )
        rows = A0.sum(axis=1) + A1.sum(axis=1) + A2.sum(axis=1)
        if np.any(np.abs(rows) > tol):
            k = int(np.argmax(np.abs(rows)))
            raise ValidationError(
                f"repeating level row {k} sums to {rows[k]:.3e}, expected 0"
            )

        object.__setattr__(self, "boundary", tuple(tuple(r) for r in coerced))
        object.__setattr__(self, "A0", A0)
        object.__setattr__(self, "A1", A1)
        object.__setattr__(self, "A2", A2)

    # ------------------------------------------------------------------

    @classmethod
    def from_trusted_blocks(cls, boundary, A0, A1, A2,
                            level_labels=None) -> "QBDProcess":
        """Construct without re-validating the generator structure.

        For builders that derive diagonals as negative row sums — the
        generator property then holds *by construction* and the row-sum
        re-check in ``__post_init__`` is pure overhead (it dominated
        the per-iteration assembly cost of the fixed point's small
        chains).  Blocks must already be float64 ``ndarray``s of
        consistent shapes; anything user-supplied should go through the
        validating constructor instead.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "boundary",
                           tuple(tuple(row) for row in boundary))
        object.__setattr__(self, "A0", A0)
        object.__setattr__(self, "A1", A1)
        object.__setattr__(self, "A2", A2)
        object.__setattr__(self, "level_labels", level_labels)
        return self

    @property
    def boundary_levels(self) -> int:
        """Index ``b`` of the last boundary level."""
        return len(self.boundary) - 1

    @property
    def phase_dim(self) -> int:
        """Phase dimension of the repeating levels."""
        return self.A1.shape[0]

    def boundary_dims(self) -> list[int]:
        """Phase dimension of each boundary level ``0..b``."""
        return [row[i].shape[0] for i, row in enumerate(self.boundary)]

    def block(self, i: int, j: int) -> np.ndarray | None:
        """Transition block from level ``i`` to level ``j`` (any levels).

        Returns ``None`` for non-adjacent levels.  Levels beyond the
        boundary use the repeating blocks.
        """
        b = self.boundary_levels
        if abs(i - j) > 1 or i < 0 or j < 0:
            return None
        if i <= b and j <= b:
            return self.boundary[i][j]
        if j == i + 1:
            return self.A0
        if j == i - 1:
            return self.A2
        return self.A1

    def _truncation_layout(self, levels: int):
        if levels < self.boundary_levels + 2:
            raise ValidationError(
                f"need at least {self.boundary_levels + 2} levels to include "
                "one repeating level"
            )
        dims = self.boundary_dims() + \
            [self.phase_dim] * (levels - self.boundary_levels - 1)
        offsets = np.concatenate([[0], np.cumsum(dims)])
        tags: list[tuple[int, int]] = []
        for lvl, dim in enumerate(dims):
            tags.extend((lvl, ph) for ph in range(dim))
        return dims, offsets, tags

    def truncated_generator(self, levels: int) -> tuple[np.ndarray, list[tuple[int, int]]]:
        """Dense generator truncated to the first ``levels`` levels.

        The top level's upward rates are folded onto its diagonal being
        removed — i.e. the truncation reflects upward transitions back
        as self-loops (rates dropped, diagonal adjusted so rows sum to
        zero).  Used by tests to compare against direct linear solves.

        Returns the matrix and a list of ``(level, phase)`` state tags.
        """
        from repro.kernels import to_dense

        dims, offsets, tags = self._truncation_layout(levels)
        n = int(offsets[-1])
        Q = np.zeros((n, n))
        for i in range(levels):
            for j in (i - 1, i, i + 1):
                if j < 0 or j >= levels:
                    continue
                blk = self.block(i, j)
                if blk is None:
                    continue
                Q[offsets[i]:offsets[i] + dims[i],
                  offsets[j]:offsets[j] + dims[j]] = to_dense(blk)
        # Repair the top level: remove the (dropped) upward rates from
        # the diagonal so that rows sum to zero.
        top = slice(int(offsets[levels - 1]), int(offsets[levels]))
        row_def = Q[top].sum(axis=1)
        Q[top, top] -= np.diag(row_def)
        return Q, tags

    def truncated_generator_sparse(self, levels: int):
        """CSR variant of :meth:`truncated_generator`.

        Same truncation semantics, but the generator is assembled as a
        block-sparse grid — the whole matrix has ``O(levels * d^2)``
        stored entries versus the dense version's ``O((levels d)^2)``
        zeros, which is what makes large-window transient analysis
        feasible.  Returns ``(csr_array, tags)``.
        """
        from scipy import sparse as _sp

        from repro.kernels import row_sums, to_csr

        dims, offsets, tags = self._truncation_layout(levels)
        grid: list[list] = [[None] * levels for _ in range(levels)]
        for i in range(levels):
            for j in (i - 1, i, i + 1):
                if j < 0 or j >= levels:
                    continue
                blk = self.block(i, j)
                if blk is None:
                    # block_array needs every row/column to carry at
                    # least one shaped entry; an explicit zero block
                    # keeps the layout unambiguous.
                    blk = np.zeros((dims[i], dims[j]))
                grid[i][j] = to_csr(blk)
        Q = _sp.csr_array(_sp.block_array(grid, format="csr"))
        # Repair the top level as in the dense variant.
        n = int(offsets[-1])
        top_start = int(offsets[levels - 1])
        row_def = np.zeros(n)
        row_def[top_start:] = row_sums(Q)[top_start:]
        Q = _sp.csr_array(Q - _sp.diags_array(row_def))
        return Q, tags
