"""Banded level processes and re-blocking to QBD form.

The paper notes (Section 3) that its analysis "is easily extended to
handle batch arrivals and/or departures as long as the batch sizes are
bounded".  Bounded batches make the level process *banded* instead of
tridiagonal: jumps up by ``1..K`` (a batch of ``k`` jobs) and down by 1
(single departures).  The standard reduction groups ``K`` consecutive
levels into one *super-level*; jumps of at most ``K`` then cross at
most one super-level boundary, restoring the QBD block-tridiagonal
structure so the whole Theorem 4.2 machinery applies unchanged.

:class:`BandedLevelProcess` describes the banded chain through a block
accessor; :func:`reblock` performs the grouping and returns an ordinary
:class:`~repro.qbd.structure.QBDProcess` together with a
:class:`ReblockedIndex` that maps original levels to (super-level,
slot) coordinates for reading the solution back.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.qbd.stationary import QBDStationaryDistribution
from repro.qbd.structure import QBDProcess

__all__ = ["BandedLevelProcess", "ReblockedIndex", "reblock"]


@dataclass(frozen=True)
class BandedLevelProcess:
    """A level process with up-jumps ``1..K`` and down-jumps of 1.

    Parameters
    ----------
    block:
        ``block(i, j)`` returns the off-diagonal-inclusive rate block
        from level ``i`` to level ``j`` (``None`` or zeros where no
        transitions exist).  ``block(i, i)`` must carry the level's
        diagonal (negative row sums across the whole band).
    level_dim:
        ``level_dim(i)`` — phase dimension of level ``i``.
    max_jump:
        ``K``: the largest upward jump.
    regular_from:
        Levels ``>= regular_from`` are homogeneous: ``block(i, i+k)``,
        ``block(i, i)`` and ``block(i, i-1)`` do not depend on ``i``
        (and ``block(i, i-1)`` lands in the same phase space).
    """

    block: Callable[[int, int], np.ndarray | None]
    level_dim: Callable[[int], int]
    max_jump: int
    regular_from: int

    def __post_init__(self):
        if self.max_jump < 1:
            raise ValidationError(f"max_jump must be >= 1, got {self.max_jump}")
        if self.regular_from < 0:
            raise ValidationError("regular_from must be non-negative")


@dataclass(frozen=True)
class ReblockedIndex:
    """Mapping between original levels and the re-blocked QBD.

    The QBD's boundary level 0 aggregates original levels
    ``0..regular_from``; QBD level ``J >= 1`` aggregates the ``K``
    original levels ``regular_from + (J-1)K + 1 .. regular_from + JK``.
    """

    regular_from: int
    max_jump: int
    boundary_offsets: tuple[int, ...]   # offset of each original level in QBD level 0
    regular_dim: int                    # phase dim d of a regular level

    def locate(self, level: int) -> tuple[int, slice]:
        """QBD level and the slice of its vector holding ``level``."""
        if level < 0:
            raise ValidationError(f"level must be non-negative, got {level}")
        b, K = self.regular_from, self.max_jump
        if level <= b:
            # boundary_offsets carries a trailing sentinel (cumulative
            # sums include the total), so level+1 is always valid here.
            return 0, slice(self.boundary_offsets[level],
                            self.boundary_offsets[level + 1])
        J = (level - b - 1) // K + 1
        slot = (level - b - 1) % K
        return J, slice(slot * self.regular_dim, (slot + 1) * self.regular_dim)

    def marginal(self, solution: QBDStationaryDistribution,
                 level: int) -> np.ndarray:
        """Stationary vector of one *original* level."""
        J, sl = self.locate(level)
        return solution.level(J)[sl]

    def mean_level(self, solution: QBDStationaryDistribution,
                   *, tol: float = 1e-12, max_super: int = 100_000) -> float:
        """``E[original level]`` by geometric summation over super-levels.

        Sums explicitly until the remaining super-level mass falls
        below ``tol`` (the mass decays like ``sp(R)^J``, so this is a
        handful of terms in practice).
        """
        b, K, d = self.regular_from, self.max_jump, self.regular_dim
        total = 0.0
        pi0 = solution.level(0)
        for lvl in range(b + 1):
            total += lvl * float(pi0[self.boundary_offsets[lvl]:
                                     self.boundary_offsets[lvl + 1]].sum())
        weights = np.repeat(b + 1 + np.arange(K), d).astype(np.float64)
        J = 1
        while J < max_super:
            piJ = solution.level(J)
            mass = float(piJ.sum())
            total += float(piJ @ (weights + (J - 1) * K))
            if mass * (b + 1 + J * K) < tol and mass < tol:
                break
            J += 1
        return total


def reblock(banded: BandedLevelProcess) -> tuple[QBDProcess, ReblockedIndex]:
    """Group a banded process into an equivalent QBD.

    Returns the QBD and the index for mapping the solution back to
    original levels.
    """
    b = banded.regular_from
    K = banded.max_jump
    d = banded.level_dim(b + 1)
    for k in range(2, K + 2):
        if banded.level_dim(b + k) != d:
            raise ValidationError(
                f"levels above regular_from must share one phase dim; "
                f"level {b + k} has {banded.level_dim(b + k)} != {d}")

    def blk(i: int, j: int) -> np.ndarray:
        out = banded.block(i, j)
        if out is None:
            return np.zeros((banded.level_dim(i), banded.level_dim(j)))
        return np.asarray(out, dtype=np.float64)

    # ---- QBD boundary level 0: original levels 0..b stacked ------------
    dims = [banded.level_dim(i) for i in range(b + 1)]
    offsets = np.concatenate([[0], np.cumsum(dims)]).astype(int)
    n0 = int(offsets[-1])
    B00 = np.zeros((n0, n0))
    for i in range(b + 1):
        for j in range(max(0, i - 1), min(b, i + K) + 1):
            B00[offsets[i]:offsets[i + 1], offsets[j]:offsets[j + 1]] = \
                blk(i, j)

    # ---- super-level structure (levels b+1+JK-K+... ) -------------------
    D = K * d

    def super_slice(r: int) -> slice:
        return slice(r * d, (r + 1) * d)

    # Boundary 0 -> super 1: original i in 0..b to j in b+1..b+K.
    B01 = np.zeros((n0, D))
    for i in range(b + 1):
        for j in range(b + 1, min(b + K, i + K) + 1):
            B01[offsets[i]:offsets[i + 1], super_slice(j - b - 1)] = blk(i, j)
    # Super 1 -> boundary 0: only level b+1 down to b.
    B10 = np.zeros((D, n0))
    B10[super_slice(0), offsets[b]:offsets[b + 1]] = blk(b + 1, b)

    # Regular blocks, measured at a deep reference level.
    ref = b + K + 2
    U = {k: blk(ref, ref + k) for k in range(1, K + 1)}
    L0 = blk(ref, ref)
    Dn = blk(ref, ref - 1)

    A1 = np.zeros((D, D))
    A0 = np.zeros((D, D))
    A2 = np.zeros((D, D))
    for r in range(K):
        # Within the super-level.
        A1[super_slice(r), super_slice(r)] = L0
        if r > 0:
            A1[super_slice(r), super_slice(r - 1)] = Dn
        for k in range(1, K - r):
            A1[super_slice(r), super_slice(r + k)] = U[k]
        # Up one super-level: jump size K - r + s for slot s <= r.
        for s in range(0, r + 1):
            k = K - r + s
            if 1 <= k <= K:
                A0[super_slice(r), super_slice(s)] = U[k]
    # Down one super-level: only slot 0 -> slot K-1.
    A2[super_slice(0), super_slice(K - 1)] = Dn

    # Super level 1 uses the same regular structure except its down
    # block goes to the boundary (B10), already handled; its within and
    # up blocks are A1 and A0 — valid because levels b+1.. are regular.
    process = QBDProcess(
        boundary=((B00, B01), (B10, A1)),
        A0=A0, A1=A1, A2=A2,
    )
    index = ReblockedIndex(
        regular_from=b, max_jump=K,
        boundary_offsets=tuple(int(o) for o in offsets),
        regular_dim=d,
    )
    return process, index
