"""Spectral (tail-asymptotic) analysis of QBD processes.

The matrix-geometric form ``pi_{b+n} = pi_b R^n`` implies geometric
tail decay governed by the *caudal characteristic*
``eta = sp(R)``: for large ``k``,

    P(level > k)  ~  c * eta^k .

``eta`` is the single most useful capacity-planning number the model
produces beyond the mean — it answers "how fast do long-queue
probabilities die off", e.g. for sizing admission thresholds on a
gang-scheduled machine.  This module computes ``eta``, its associated
left/right Perron vectors, and the asymptotic prefactor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.qbd.stationary import QBDStationaryDistribution

__all__ = ["CaudalCharacteristic", "caudal_characteristic", "decay_rate"]


@dataclass(frozen=True)
class CaudalCharacteristic:
    """Tail-decay summary of a solved QBD.

    Attributes
    ----------
    eta:
        The decay rate ``sp(R) in (0, 1)`` for a positive recurrent
        process.
    left_vector, right_vector:
        Perron eigenvectors of ``R`` (``u R = eta u``, ``R v = eta v``),
        normalized to ``u v = 1`` and ``u e = 1``.
    prefactor:
        ``c`` in ``P(level > k) ~ c eta^k``.
    """

    eta: float
    left_vector: np.ndarray
    right_vector: np.ndarray
    prefactor: float

    def tail_estimate(self, k: int) -> float:
        """Asymptotic approximation of ``P(level > k)``."""
        return self.prefactor * self.eta ** k

    def quantile_level(self, epsilon: float) -> int:
        """Smallest ``k`` with asymptotic ``P(level > k) <= epsilon``.

        The admission-threshold question: how long can the queue be
        allowed to grow before overflow probability drops below
        ``epsilon``.
        """
        if not 0 < epsilon < 1:
            raise ValidationError(f"epsilon must be in (0,1), got {epsilon}")
        if self.prefactor <= epsilon:
            return 0
        return int(np.ceil(np.log(epsilon / self.prefactor)
                           / np.log(self.eta)))


def decay_rate(R: np.ndarray) -> float:
    """The caudal characteristic ``eta = sp(R)`` alone."""
    R = np.asarray(R, dtype=np.float64)
    return float(np.max(np.abs(np.linalg.eigvals(R))))


def caudal_characteristic(solution: QBDStationaryDistribution
                          ) -> CaudalCharacteristic:
    """Full tail-asymptotic analysis of a solved QBD.

    Uses the Perron decomposition of ``R``: with ``u, v`` the dominant
    eigenpair, ``R^n -> eta^n v u / (u v)`` so

        P(level > b + n) = pi_b R^{n+1} (I-R)^{-1} e
                        ~ [pi_b v] [u (I-R)^{-1} e] eta^{n+1} .
    """
    R = solution.R
    eigvals, right = np.linalg.eig(R)
    idx = int(np.argmax(np.abs(eigvals)))
    eta = float(np.real(eigvals[idx]))
    if eta <= 0 or eta >= 1:
        raise ValidationError(
            f"caudal characteristic {eta} outside (0,1); is the process "
            "positive recurrent with a non-trivial repeating part?")
    v = np.real(right[:, idx])
    # Left eigenvector from the transpose.
    eigvals_l, left = np.linalg.eig(R.T)
    idx_l = int(np.argmin(np.abs(eigvals_l - eta)))
    u = np.real(left[:, idx_l])
    # Perron vectors can be normalized non-negative.
    if u.sum() < 0:
        u = -u
    if v.sum() < 0:
        v = -v
    u = u / u.sum()
    scale = float(u @ v)
    if abs(scale) < 1e-14:
        raise ValidationError("degenerate Perron pair; R may be defective")
    v = v / scale

    b = solution.boundary_levels
    pib = solution.boundary_pi[b]
    d = R.shape[0]
    tail_weights = np.linalg.solve(np.eye(d) - R, np.ones(d))
    # P(level > b + n) ~ (pi_b v)(u (I-R)^{-1} e) eta^{n+1}
    #                  = prefactor * eta^{b + n} with the b offset folded in.
    amp = float(pib @ v) * float(u @ tail_weights)
    prefactor = amp * eta ** (1 - b)  # so that tail_estimate(k)=c*eta^k
    return CaudalCharacteristic(eta=eta, left_vector=u, right_vector=v,
                                prefactor=prefactor)
