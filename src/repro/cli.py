"""Command-line interface: ``repro-gang`` (or ``python -m repro.cli``).

Subcommands
-----------
``run``
    Evaluate a scenario — a JSON file (see :mod:`repro.serialize`) or
    a preset name — through the unified :mod:`repro.scenario` runner.
``scenarios``
    List the preset scenarios (the paper's figures as data); with a
    name, print that preset's canonical JSON.
``solve``
    Solve one gang-scheduled configuration analytically and print the
    per-class report.
``figure``
    Regenerate one of the paper's figures (2-5) as a text table.
``optimize``
    Find the quantum length minimizing total mean jobs — or, with
    ``--target 'p99<=X'``, the smallest quantum meeting a tail SLO.
``simulate``
    Run the discrete-event simulator on a configuration and print the
    statistics (optionally next to the analytic solution).
``report``
    Summarize a trace file produced with ``--trace``: the per-class /
    per-stage timing table plus metric rollups.
``serve``
    Run the scenario service daemon (:mod:`repro.service`): JSONL over
    stdin/stdout by default, or an HTTP front end with ``--http``.
``request``
    Submit one request to a running daemon (``--url``) or serve it
    one-shot against a store directory in-process (``--store``).

Every evaluating subcommand is a thin adapter that builds a
:class:`~repro.scenario.spec.Scenario`; the engine flags (``--backend``,
``--workers``, ``--checkpoint``, ``--fp-tol``, ``--max-iterations``,
``--heavy-traffic``, ``--horizon``, ``--seed``, ``--replications``,
``--budget``) are derived from the one shared
:class:`~repro.scenario.spec.EngineSpec` schema (:data:`ENGINE_FLAGS`),
so every knob is reachable from every subcommand by construction.

Observability
-------------
The evaluating subcommands all accept ``--trace FILE`` (record a span
trace of the run as JSONL) and ``--metrics`` (print the solver's
metric snapshot to stderr on exit); see :mod:`repro.obs`.  ``run`` and
``figure`` additionally accept ``--metrics-select 'mean,p95,p99'`` to
report per-class response-time percentiles and tail probabilities
(:mod:`repro.metrics`).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.errors import ReproError
from repro.scenario import EngineSpec, Scenario, SystemSpec, engine_field_names

__all__ = ["main", "build_parser", "ENGINE_FLAGS"]


#: The shared engine-flag schema: one row per
#: :class:`~repro.scenario.spec.EngineSpec` knob, attached verbatim to
#: every evaluating subcommand.  ``(field, flag, argparse kwargs)``.
ENGINE_FLAGS: tuple[tuple[str, str, dict], ...] = (
    ("backend", "--backend",
     {"choices": ("auto", "dense", "sparse"),
      "help": "kernel selection for assembly and the QBD solves "
              "(default: auto picks per block by size and density)"}),
    ("workers", "--workers",
     {"type": int, "metavar": "N",
      "help": "solve sweep grid points in N parallel processes"}),
    ("checkpoint", "--checkpoint",
     {"metavar": "FILE",
      "help": "journal completed sweep points to FILE (JSONL) and "
              "resume from it if it exists"}),
    ("batch_points", "--batch",
     {"type": int, "metavar": "N",
      "help": "solve up to N adjacent sweep points at once through the "
              "batched lockstep engine (stacked BLAS, continuation "
              "warm-starts, adaptive backend crossover); 0 or 1 keeps "
              "the per-point path"}),
    ("max_iterations", "--max-iterations",
     {"type": int, "metavar": "N",
      "help": "fixed-point iteration budget (default 200)"}),
    ("tol", "--fp-tol",
     {"type": float, "metavar": "X",
      "help": "fixed-point convergence tolerance (default 1e-5)"}),
    ("heavy_traffic_only", "--heavy-traffic",
     {"action": "store_true",
      "help": "heavy-traffic model only (no fixed point)"}),
    ("solve_budget", "--solve-budget",
     {"type": float, "metavar": "S",
      "help": "wall-clock budget in seconds for each R-matrix solve "
              "(enforced mid-attempt; default: none)"}),
    ("horizon", "--horizon",
     {"type": float, "metavar": "T",
      "help": "simulated time per run (default 20000)"}),
    ("seed", "--seed",
     {"type": int, "metavar": "N",
      "help": "simulation base seed (default 0)"}),
    ("replications", "--replications",
     {"type": int, "metavar": "R",
      "help": "independent simulation replications per point (default 1; "
              ">= 2 adds confidence intervals)"}),
    ("max_evaluations", "--budget",
     {"type": int, "metavar": "N",
      "help": "optimizer model-solve budget (default 60)"}),
)

_unknown = {f for f, _, _ in ENGINE_FLAGS} - set(engine_field_names())
assert not _unknown, f"ENGINE_FLAGS names unknown EngineSpec fields: {_unknown}"


def _add_engine_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("engine options (shared scenario schema)")
    for field, flag, kwargs in ENGINE_FLAGS:
        g.add_argument(flag, dest=field, default=None, **kwargs)
    # ``--no-batch`` is sugar for ``--batch 0`` (force the per-point
    # path even when the scenario asks for batching).
    g.add_argument("--no-batch", dest="batch_points", action="store_const",
                   const=0, help="disable batched sweep solving "
                   "(equivalent to --batch 0)")


def _engine_overrides(args) -> dict:
    """Engine fields the user set explicitly (``None`` = keep scenario's)."""
    return {field: getattr(args, field)
            for field, _, _ in ENGINE_FLAGS
            if getattr(args, field, None) is not None}


def _engine_spec(args, base: EngineSpec | None = None) -> EngineSpec:
    return dataclasses.replace(base if base is not None else EngineSpec(),
                               **_engine_overrides(args))


def _add_system_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--processors", type=int, default=8,
                   help="total processors P (default 8)")
    p.add_argument("--class", dest="classes", action="append",
                   metavar="g,lam,mu,quantum,overhead", default=None,
                   help="add a job class: partition size, arrival rate, "
                        "service rate, mean quantum, mean overhead "
                        "(repeatable; default: the paper's fig-2 classes)")
    p.add_argument("--empty-queue", dest="empty_queue",
                   choices=("switch", "idle"), default="switch",
                   help="behaviour when a queue empties mid-quantum")
    p.add_argument("--config", metavar="FILE", default=None,
                   help="load the system from a JSON file (see "
                        "repro.serialize); overrides --processors/--class")


def _parse_system(args) -> SystemConfig:
    if getattr(args, "config", None):
        from repro.serialize import load_system
        return load_system(args.config)
    if args.classes:
        classes = []
        for spec in args.classes:
            try:
                g, lam, mu, q, oh = (float(x) for x in spec.split(","))
            except ValueError:
                raise SystemExit(
                    f"bad --class spec {spec!r}; expected g,lam,mu,quantum,"
                    "overhead")
            classes.append(ClassConfig.markovian(
                int(g), arrival_rate=lam, service_rate=mu,
                quantum_mean=q, overhead_mean=oh))
        return SystemConfig(processors=args.processors,
                            classes=tuple(classes),
                            empty_queue_policy=args.empty_queue)
    from repro.workloads import fig23_config
    return fig23_config(0.4, 2.0, policy=args.empty_queue)


def _add_policy_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--policy", metavar="SPEC", default=None,
                   help="scheduling policy: KIND[:ARGS], e.g. "
                        "'weighted:2/1/1/1', "
                        "'priority:order=3/2/1/0,decay=0.5', "
                        "'malleable:procs=2/2/4/8,sigma=0.7' "
                        "(default: the paper's round-robin)")


def _parse_policy_arg(args):
    """The scheduling policy named by ``--policy`` (``None`` if unset)."""
    spec = getattr(args, "policy", None)
    if spec is None:
        return None
    from repro.policy import parse_policy
    return parse_policy(spec)


def _checkpoint_summary(path, result) -> None:
    if not (result.resumed or result.stale):
        return
    line = (f"repro-gang: checkpoint {path}: "
            f"{result.resumed}/{len(result.points)} point(s) resumed")
    if result.stale:
        line += f", {result.stale} stale point(s) ignored"
    print(line, file=sys.stderr)


def _print_comparison(result) -> None:
    pt = result.points[0]
    print("\nanalytic comparison:")
    for p, name in enumerate(result.class_names):
        print(f"  {name}: model N={pt.mean_jobs[p]:.4f} "
              f"sim N={pt.sim_mean_jobs[p]:.4f} ({pt.delta[p]:+.1%})")


def _print_metric_result(result) -> None:
    """Render per-class distribution metrics when the run carried any."""
    table = result.metrics_table()
    if table is None:
        return
    print()
    print("# response-time metrics")
    print(table.render())
    kinds = next((pt.dist_kinds for pt in result.points
                  if pt.dist_kinds is not None), None)
    if kinds is not None and any(k != "exact" for k in kinds):
        pairs = ", ".join(f"{n}={k}"
                          for n, k in zip(result.class_names, kinds))
        print(f"# distribution kinds: {pairs}")


def _metric_selectors_arg(args) -> tuple[str, ...] | None:
    """Selector tuple from ``--metrics-select`` (``None`` if unset)."""
    spec = getattr(args, "metrics_select", None)
    if spec is None:
        return None
    selectors = tuple(s.strip() for s in spec.split(",") if s.strip())
    if not selectors:
        raise SystemExit("repro-gang: --metrics-select needs at least one "
                         "selector (e.g. 'mean,p95,p99')")
    return selectors


def _cmd_solve(args) -> int:
    from repro.scenario import run as run_scenario
    scenario = Scenario(name="solve",
                        system=SystemSpec(config=_parse_system(args),
                                          policy=_parse_policy_arg(args)),
                        engine=_engine_spec(args))
    result = run_scenario(scenario)
    print(result.solved.describe())
    return 0


def _cmd_figure(args) -> int:
    from repro.analysis import Table
    from repro.scenario import figure_scenarios
    from repro.scenario import run as run_scenario
    policy = _parse_policy_arg(args)
    selectors = _metric_selectors_arg(args)
    scenarios = [s.with_engine(**_engine_overrides(args)).with_policy(policy)
                 for s in figure_scenarios(args.number)]
    if selectors is not None:
        scenarios = [s.with_output(metrics=selectors) for s in scenarios]
    if len(scenarios) == 1:
        result = run_scenario(scenarios[0])
        _checkpoint_summary(args.checkpoint, result)
        table = Table(result.parameter,
                      [f"N[{n}]" for n in result.class_names])
        for pt in result.points:
            table.add_row(pt.value, pt.mean_jobs)
    else:
        # Figure 5: one scenario per focus class; column p is N_p of the
        # scenario that grants class p the swept cycle fraction.  A
        # shared --checkpoint journals each curve to its own sibling.
        if args.checkpoint:
            scenarios = [s.with_engine(checkpoint=f"{args.checkpoint}.{s.name}")
                         for s in scenarios]
        results = [run_scenario(s) for s in scenarios]
        for s, r in zip(scenarios, results):
            _checkpoint_summary(s.engine.checkpoint, r)
        table = Table("fraction", [f"N[class{p}]" for p in range(4)])
        for i, f in enumerate(results[0].values()):
            table.add_row(f, [results[p].points[i].mean_jobs[p]
                              for p in range(4)])
    print(table.render())
    if selectors is not None and len(scenarios) == 1:
        _print_metric_result(result)
    if args.plot:
        from repro.analysis import ascii_plot
        print()
        print(ascii_plot([table.column(c) for c in table.column_names],
                         title=f"Figure {args.number}"))
    return 0


def _cmd_optimize(args) -> int:
    from repro.core import (
        optimize_priority_order,
        optimize_quantum,
        optimize_weights,
    )
    base = _parse_system(args)
    eng = _engine_spec(args)
    policy = _parse_policy_arg(args)
    model_kwargs = eng.model_kwargs()

    if args.target is not None and args.search != "quantum":
        raise SystemExit("repro-gang optimize: --target (tail SLO) is only "
                         "supported with --search quantum")

    if args.search == "weights":
        best = optimize_weights(base, max_evaluations=eng.max_evaluations,
                                model_kwargs=model_kwargs)
        print(f"optimal policy: {best.policy.describe()}")
        print(f"objective (total mean jobs): {best.objective_value:.4f}")
        print(f"model solves: {best.evaluations}")
        solved = GangSchedulingModel(
            base, policy=best.policy,
            **model_kwargs).solve(**eng.solve_kwargs())
        print()
        print(solved.describe())
        return 0
    if args.search == "priority":
        best = optimize_priority_order(base, model_kwargs=model_kwargs)
        print(f"optimal policy: {best.policy.describe()}")
        print(f"objective (total mean jobs): {best.objective_value:.4f}")
        print(f"model solves: {best.evaluations}")
        solved = GangSchedulingModel(
            base, policy=best.policy,
            **model_kwargs).solve(**eng.solve_kwargs())
        print()
        print(solved.describe())
        return 0

    # Quantum-length search (the default), under whatever scheduling
    # policy --policy named.
    if policy is not None:
        model_kwargs["policy"] = policy

    def with_quantum(q: float) -> SystemConfig:
        return SystemConfig(
            processors=base.processors,
            classes=tuple(
                ClassConfig(partition_size=c.partition_size,
                            arrival=c.arrival, service=c.service,
                            quantum=c.quantum.rescaled(q),
                            overhead=c.overhead, name=c.name)
                for c in base.classes),
            empty_queue_policy=base.empty_queue_policy,
        )

    if args.target is not None:
        from repro.core.optimize import optimize_quantum_for_slo
        best = optimize_quantum_for_slo(
            with_quantum, target=args.target, bounds=(args.min, args.max),
            tol=args.search_tol, max_evaluations=eng.max_evaluations,
            model_kwargs=model_kwargs)
        sel, bound = best.target.selector, best.target.bound
        if not best.feasible:
            print(f"SLO {sel}<={bound:g} is infeasible on "
                  f"[{args.min:g}, {args.max:g}]: the best quantum "
                  f"({best.best_quantum:.4f}) only reaches "
                  f"{sel}={best.best_metric_value:.4f} "
                  f"({best.evaluations} model solves)", file=sys.stderr)
            return 2
        print(f"smallest quantum meeting {sel}<={bound:g}: "
              f"{best.quantum:.4f}")
        print(f"worst-class {sel} at that quantum: "
              f"{best.metric_value:.4f}")
        print(f"model solves: {best.evaluations}")
        solved = GangSchedulingModel(
            with_quantum(best.quantum),
            **model_kwargs).solve(**eng.solve_kwargs())
        print()
        print(solved.describe())
        return 0

    best = optimize_quantum(with_quantum, bounds=(args.min, args.max),
                            tol=args.search_tol,
                            max_evaluations=eng.max_evaluations,
                            model_kwargs=model_kwargs)
    print(f"optimal quantum mean: {best.quantum:.4f}")
    print(f"objective (total mean jobs): {best.objective_value:.4f}")
    print(f"model solves: {best.evaluations}")
    solved = GangSchedulingModel(
        with_quantum(best.quantum),
        **model_kwargs).solve(**eng.solve_kwargs())
    print()
    print(solved.describe())
    return 0


def _cmd_simulate(args) -> int:
    from repro.scenario import run as run_scenario
    base = EngineSpec(engine="both" if args.compare else "sim")
    scenario = Scenario(name="simulate",
                        system=SystemSpec(config=_parse_system(args),
                                          policy=_parse_policy_arg(args)),
                        engine=_engine_spec(args, base))
    result = run_scenario(scenario)
    print(result.sim.describe(result.class_names))
    if args.compare:
        _print_comparison(result)
    return 0


def _print_run_result(result, *, plot: bool = False) -> None:
    if result.parameter is None:
        if result.solved is not None:
            print(result.solved.describe())
        if result.sim is not None:
            if result.solved is not None:
                print()
            print(result.sim.describe(result.class_names))
        if result.engine == "both":
            _print_comparison(result)
        _print_metric_result(result)
        return
    measures = result.scenario.output.measures or ("mean_jobs",)
    tables = [(m, result.to_table(m)) for m in measures]
    for i, (measure, table) in enumerate(tables):
        if i:
            print()
        if len(tables) > 1:
            print(f"# {measure}")
        print(table.render())
    _print_metric_result(result)
    if plot:
        from repro.analysis import ascii_plot
        table = tables[0][1]
        print()
        print(ascii_plot([table.column(c) for c in table.column_names],
                         title=result.scenario.name or "scenario"))


def _load_scenario_arg(ref: str, grid: str = "default"):
    """Resolve a SCENARIO argument: a JSON file path or a preset name.

    Anything that exists on disk — or merely *looks* like a path
    (a ``.json`` suffix or a path separator) — is treated as a file,
    so a missing or corrupt scenario file fails with the standard
    one-line :class:`~repro.errors.ReproError` message (exit 2)
    instead of a confusing unknown-preset listing or a raw traceback.
    """
    import os
    import pathlib

    from repro.scenario import get_scenario
    path = pathlib.Path(ref)
    if path.exists() or path.suffix == ".json" or os.sep in ref:
        from repro.serialize import load_scenario
        return load_scenario(path)
    return get_scenario(ref, grid=grid)


def _cmd_run(args) -> int:
    from repro.scenario import run as run_scenario
    scenario = _load_scenario_arg(args.scenario, grid=args.grid)
    overrides = _engine_overrides(args)
    if args.engine is not None:
        overrides["engine"] = args.engine
    scenario = scenario.with_engine(**overrides) \
                       .with_policy(_parse_policy_arg(args))
    selectors = _metric_selectors_arg(args)
    if selectors is not None:
        scenario = scenario.with_output(metrics=selectors)
    result = run_scenario(scenario)
    _checkpoint_summary(scenario.engine.checkpoint, result)
    _print_run_result(result, plot=args.plot)
    return 0


def _cmd_scenarios(args) -> int:
    from repro.scenario import get_scenario, list_scenarios
    if args.name:
        import json

        from repro.serialize import scenario_to_dict
        scenario = get_scenario(args.name, grid=args.grid)
        print(json.dumps(scenario_to_dict(scenario), indent=2))
        return 0
    print(f"{'name':<22} {'engine':<9} {'sweep':<18} description")
    for s in list_scenarios(grid=args.grid):
        axis = (f"{s.parameter} x{len(s.grid())}" if s.axis is not None
                else "single point")
        print(f"{s.name:<22} {s.engine.engine:<9} {axis:<18} {s.description}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import ScenarioService, ServiceConfig
    config = ServiceConfig(
        store_dir=args.store, workers=args.workers,
        max_pending=args.max_pending, default_timeout=args.timeout,
        trace=getattr(args, "trace", None),
        compact_on_start=bool(getattr(args, "compact_on_start", False)),
        log=getattr(args, "log", None),
        log_max_bytes=getattr(args, "log_max_bytes", 16 << 20),
        profile_workers=bool(getattr(args, "profile_workers", False)))
    with ScenarioService(config) as service:
        if args.http is not None:
            httpd = service.serve_http(args.host, args.http)
            host, port = httpd.server_address[:2]
            print(f"repro-gang: serving HTTP on {host}:{port} "
                  f"(store {args.store}, {args.workers} worker(s))",
                  file=sys.stderr)
            try:
                httpd.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                httpd.server_close()
        else:
            service.serve_stdio()
    return 0


def _request_payload(args) -> dict:
    """Build the request object a ``request`` invocation sends."""
    import os
    import pathlib

    request: dict = {"id": args.id, "op": args.op}
    if args.op == "run":
        if args.scenario is None:
            raise SystemExit("repro-gang request: a run request needs a "
                             "SCENARIO (file or preset name)")
        path = pathlib.Path(args.scenario)
        if path.exists() or path.suffix == ".json" or os.sep in args.scenario:
            from repro.serialize import load_scenario, scenario_to_dict
            request["scenario"] = scenario_to_dict(load_scenario(path))
        else:
            request["preset"] = args.scenario
            request["grid"] = args.grid
        overrides = _engine_overrides(args)
        if overrides:
            request["engine"] = overrides
    if args.timeout is not None:
        request["timeout"] = args.timeout
    return request


def _cmd_request(args) -> int:
    import json
    if (args.url is None) == (args.store is None):
        raise SystemExit("repro-gang request: pass exactly one of --url "
                         "(a running daemon) or --store (one-shot, "
                         "in-process)")
    request = _request_payload(args)
    if args.url is not None:
        import urllib.error
        import urllib.request
        try:
            with urllib.request.urlopen(urllib.request.Request(
                    args.url, data=json.dumps(request).encode("utf-8"),
                    headers={"Content-Type": "application/json"}),
                    timeout=args.timeout or 600.0) as http_response:
                response = json.loads(http_response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            response = json.loads(exc.read().decode("utf-8"))
        except (urllib.error.URLError, OSError) as exc:
            raise ReproError(
                f"cannot reach scenario service at {args.url}: {exc}"
            ) from exc
    else:
        from repro.service import ScenarioService, ServiceConfig
        config = ServiceConfig(store_dir=args.store,
                               workers=args.workers or 0,
                               default_timeout=args.timeout)
        with ScenarioService(config) as service:
            response = service.handle(request)
    print(json.dumps(response, indent=2))
    status = response.get("status")
    if status in ("ok", "degraded"):
        return 0
    return 2 if status == "error" else 1


def _cmd_report(args) -> int:
    from repro.obs import (render_report, render_requests,
                           summarize_trace, write_chrome_trace)
    try:
        summary = summarize_trace(args.trace_file)
    except FileNotFoundError:
        print(f"repro-gang: no such trace file: {args.trace_file}",
              file=sys.stderr)
        return 2
    if getattr(args, "chrome", None):
        n = write_chrome_trace(args.trace_file, args.chrome)
        print(f"repro-gang: wrote {n} trace event(s) to {args.chrome} "
              "(open in ui.perfetto.dev or speedscope)", file=sys.stderr)
    if getattr(args, "requests", False):
        print(render_requests(summary))
    else:
        print(render_report(summary))
    return 0


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="record a span trace of the run as JSONL to FILE "
                        "(summarize it with 'repro-gang report FILE')")
    p.add_argument("--metrics", action="store_true",
                   help="collect solver metrics and print the snapshot to "
                        "stderr on exit")


def _add_metric_select_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--metrics-select", dest="metrics_select",
                   metavar="SEL[,SEL...]", default=None,
                   help="report these response-time metrics per class "
                        "('mean,p95,p99,tail@t'); anything beyond the "
                        "default mean extracts per-class distributions "
                        "from the solved model")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gang",
        description="Gang-scheduling analysis and simulation "
                    "(SPAA '96 reproduction)")
    parser.add_argument("--traceback", action="store_true",
                        help="dump the full traceback on solver errors "
                             "instead of a one-line message")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run",
                           help="evaluate a scenario (JSON file or preset "
                                "name) through the unified runner")
    p_run.add_argument("scenario", metavar="SCENARIO",
                       help="path of a scenario JSON file, or a preset "
                            "name from 'repro-gang scenarios'")
    p_run.add_argument("--grid", choices=("default", "quick", "full"),
                       default="default",
                       help="grid tier for preset scenarios (default: "
                            "default)")
    p_run.add_argument("--engine", choices=("analytic", "sim", "both"),
                       default=None,
                       help="override the scenario's engine")
    p_run.add_argument("--plot", action="store_true",
                       help="also render swept curves as a text plot")
    _add_policy_arg(p_run)
    _add_engine_args(p_run)
    _add_obs_args(p_run)
    _add_metric_select_arg(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sc = sub.add_parser("scenarios",
                          help="list preset scenarios, or print one as JSON")
    p_sc.add_argument("name", nargs="?", default=None,
                      help="print this preset's canonical JSON instead of "
                           "the listing")
    p_sc.add_argument("--grid", choices=("default", "quick", "full"),
                      default="default",
                      help="grid tier for the listing/export")
    p_sc.set_defaults(func=_cmd_scenarios)

    p_solve = sub.add_parser("solve", help="solve a configuration analytically")
    _add_system_args(p_solve)
    _add_policy_arg(p_solve)
    _add_engine_args(p_solve)
    _add_obs_args(p_solve)
    p_solve.set_defaults(func=_cmd_solve)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", choices=("2", "3", "4", "5"),
                       help="figure number")
    p_fig.add_argument("--plot", action="store_true",
                       help="also render the curves as a text plot")
    _add_policy_arg(p_fig)
    _add_engine_args(p_fig)
    _add_obs_args(p_fig)
    _add_metric_select_arg(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_opt = sub.add_parser("optimize",
                           help="find the quantum, policy weights, or "
                                "priority order minimizing total mean jobs")
    _add_system_args(p_opt)
    _add_policy_arg(p_opt)
    p_opt.add_argument("--search", choices=("quantum", "weights", "priority"),
                       default="quantum",
                       help="which knob to optimize: quantum length "
                            "(default), WeightedQuantum weights, or "
                            "PriorityCycle ordering")
    p_opt.add_argument("--min", type=float, default=0.1,
                       help="lower bound of the quantum search (default 0.1)")
    p_opt.add_argument("--max", type=float, default=8.0,
                       help="upper bound of the quantum search (default 8)")
    p_opt.add_argument("--tol", dest="search_tol", type=float, default=0.01,
                       help="relative interval tolerance of the quantum "
                            "search (default 0.01)")
    p_opt.add_argument("--target", metavar="SLO", default=None,
                       help="find the smallest quantum meeting a tail-SLO "
                            "bound instead of minimizing congestion: "
                            "'p99<=2.5', 'tail@5<=0.01', 'mean<=3' "
                            "(worst class must meet the bound; "
                            "--search quantum only)")
    _add_engine_args(p_opt)
    _add_obs_args(p_opt)
    p_opt.set_defaults(func=_cmd_optimize)

    p_sim = sub.add_parser("simulate", help="simulate a configuration")
    _add_system_args(p_sim)
    _add_policy_arg(p_sim)
    p_sim.add_argument("--compare", action="store_true",
                       help="also solve analytically and compare")
    _add_engine_args(p_sim)
    _add_obs_args(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_srv = sub.add_parser("serve",
                           help="run the scenario service daemon (JSONL "
                                "stdio, or HTTP with --http)")
    p_srv.add_argument("--store", required=True, metavar="DIR",
                       help="result store directory (created if missing)")
    p_srv.add_argument("--workers", type=int, default=0, metavar="N",
                       help="supervised worker processes (default 0: "
                            "solve inline)")
    p_srv.add_argument("--max-pending", type=int, default=8, metavar="N",
                       help="bounded request queue; overflow gets a busy "
                            "reply (default 8)")
    p_srv.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="default per-request deadline in seconds "
                            "(default: none)")
    p_srv.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="serve HTTP on PORT instead of stdio "
                            "(0 picks a free port)")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind address (default 127.0.0.1)")
    p_srv.add_argument("--trace", metavar="FILE", default=None,
                       help="record the daemon's span trace to FILE")
    p_srv.add_argument("--log", metavar="FILE", default=None,
                       help="structured JSON-lines event log (rotated "
                            "by size)")
    p_srv.add_argument("--log-max-bytes", type=int, default=16 << 20,
                       metavar="N",
                       help="rotate the --log file past N bytes "
                            "(default 16 MiB, keeping 3 backups)")
    p_srv.add_argument("--profile-workers", action="store_true",
                       help="cProfile every worker task; hotspots land "
                            "in the trace and 'repro-gang report'")
    p_srv.add_argument("--compact-on-start", action="store_true",
                       help="compact the result store before serving "
                            "(rewrite live records, drop superseded and "
                            "quarantined ones)")
    p_srv.set_defaults(func=_cmd_serve)

    p_req = sub.add_parser("request",
                           help="submit one request to the scenario "
                                "service")
    p_req.add_argument("scenario", metavar="SCENARIO", nargs="?",
                       default=None,
                       help="scenario JSON file or preset name (for "
                            "--op run)")
    p_req.add_argument("--grid", choices=("default", "quick", "full"),
                       default="default",
                       help="grid tier for preset scenarios")
    p_req.add_argument("--op", choices=("run", "ping", "stats", "shutdown"),
                       default="run", help="operation (default run)")
    p_req.add_argument("--url", default=None, metavar="URL",
                       help="POST to a daemon started with serve --http")
    p_req.add_argument("--store", default=None, metavar="DIR",
                       help="serve the request one-shot, in-process, "
                            "against this store directory")
    p_req.add_argument("--id", default="cli", metavar="ID",
                       help="request id echoed in the reply (default cli)")
    p_req.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-request deadline in seconds")
    _add_engine_args(p_req)
    p_req.set_defaults(func=_cmd_request)

    p_rep = sub.add_parser("report",
                           help="summarize a --trace file: per-class/"
                                "per-stage timings and metric rollups")
    p_rep.add_argument("trace_file", metavar="TRACE",
                       help="JSONL trace file written by --trace")
    p_rep.add_argument("--requests", action="store_true",
                       help="per-request table (service traces): elapsed, "
                            "span time, and pids per request ID")
    p_rep.add_argument("--chrome", metavar="OUT", default=None,
                       help="also export Chrome trace-event JSON to OUT "
                            "(open in ui.perfetto.dev or speedscope)")
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    want_metrics = bool(getattr(args, "metrics", False))
    collecting = trace_path is not None or want_metrics
    if collecting:
        from repro import obs
        obs.start(trace_path=trace_path)
    try:
        return args.func(args)
    except ReproError as exc:
        # Solver failures (instability, non-convergence, bad
        # checkpoints) are expected operational outcomes: report them
        # readably and exit 2, reserving tracebacks for --traceback.
        if args.traceback:
            raise
        print(f"repro-gang: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    finally:
        if collecting:
            from repro import obs
            from repro.obs import render_snapshot
            snap = obs.stop()
            if want_metrics:
                print(render_snapshot(snap), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
