"""Command-line interface: ``repro-gang`` (or ``python -m repro.cli``).

Subcommands
-----------
``solve``
    Solve one gang-scheduled configuration analytically and print the
    per-class report.
``figure``
    Regenerate one of the paper's figures (2-5) as a text table.
``simulate``
    Run the discrete-event simulator on a configuration and print the
    statistics (optionally next to the analytic solution).
``report``
    Summarize a trace file produced with ``--trace``: the per-class /
    per-stage timing table plus metric rollups.

Observability
-------------
``solve``, ``figure``, ``optimize`` and ``simulate`` all accept
``--trace FILE`` (record a span trace of the run as JSONL) and
``--metrics`` (print the solver's metric snapshot to stderr on exit);
see :mod:`repro.obs`.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _add_system_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--processors", type=int, default=8,
                   help="total processors P (default 8)")
    p.add_argument("--class", dest="classes", action="append",
                   metavar="g,lam,mu,quantum,overhead", default=None,
                   help="add a job class: partition size, arrival rate, "
                        "service rate, mean quantum, mean overhead "
                        "(repeatable; default: the paper's fig-2 classes)")
    p.add_argument("--policy", choices=("switch", "idle"), default="switch",
                   help="behaviour when a queue empties mid-quantum")
    p.add_argument("--config", metavar="FILE", default=None,
                   help="load the system from a JSON file (see "
                        "repro.serialize); overrides --processors/--class")


def _parse_system(args) -> SystemConfig:
    if getattr(args, "config", None):
        from repro.serialize import load_system
        return load_system(args.config)
    if args.classes:
        classes = []
        for spec in args.classes:
            try:
                g, lam, mu, q, oh = (float(x) for x in spec.split(","))
            except ValueError:
                raise SystemExit(
                    f"bad --class spec {spec!r}; expected g,lam,mu,quantum,"
                    "overhead")
            classes.append(ClassConfig.markovian(
                int(g), arrival_rate=lam, service_rate=mu,
                quantum_mean=q, overhead_mean=oh))
        return SystemConfig(processors=args.processors,
                            classes=tuple(classes),
                            empty_queue_policy=args.policy)
    from repro.workloads import fig23_config
    return fig23_config(0.4, 2.0, policy=args.policy)


def _cmd_solve(args) -> int:
    config = _parse_system(args)
    solved = GangSchedulingModel(config).solve(
        heavy_traffic_only=args.heavy_traffic)
    print(solved.describe())
    return 0


def _cmd_figure(args) -> int:
    from repro.analysis import Table
    from repro.workloads import fig23_config, fig4_config, fig5_config, sweep
    grids = {
        "2": ("quantum_mean", [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 4.5, 6.0],
              lambda q: fig23_config(0.4, q)),
        "3": ("quantum_mean", [0.15, 0.25, 0.4, 0.6, 1.0, 2.0, 4.0, 6.0],
              lambda q: fig23_config(0.9, q)),
        "4": ("service_rate", [2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0],
              fig4_config),
    }
    if args.number in grids:
        name, grid, factory = grids[args.number]
        result = sweep(name, grid, factory, checkpoint=args.checkpoint,
                       workers=args.workers,
                       model_kwargs={"backend": args.backend})
        if result.resumed or result.stale:
            line = (f"repro-gang: checkpoint {args.checkpoint}: "
                    f"{result.resumed}/{len(result.points)} point(s) resumed")
            if result.stale:
                line += f", {result.stale} stale point(s) ignored"
            print(line, file=sys.stderr)
        table = Table(name, [f"N[{n}]" for n in result.class_names])
        for pt in result.points:
            table.add_row(pt.value, pt.mean_jobs)
    else:
        # Figure 5: one curve per focus class.
        grid = [0.15, 0.3, 0.45, 0.6, 0.75, 0.9]
        table = Table("fraction", [f"N[class{p}]" for p in range(4)])
        for f in grid:
            row = []
            for p in range(4):
                solved = GangSchedulingModel(
                    fig5_config(focus_class=p, fraction=f),
                    backend=args.backend).solve()
                row.append(solved.mean_jobs(p))
            table.add_row(f, row)
    print(table.render())
    if args.plot:
        from repro.analysis import ascii_plot
        print()
        print(ascii_plot([table.column(c) for c in table.column_names],
                         title=f"Figure {args.number}"))
    return 0


def _cmd_optimize(args) -> int:
    from repro.core import optimize_quantum
    base = _parse_system(args)

    def with_quantum(q: float) -> SystemConfig:
        return SystemConfig(
            processors=base.processors,
            classes=tuple(
                ClassConfig(partition_size=c.partition_size,
                            arrival=c.arrival, service=c.service,
                            quantum=c.quantum.rescaled(q),
                            overhead=c.overhead, name=c.name)
                for c in base.classes),
            empty_queue_policy=base.empty_queue_policy,
        )

    best = optimize_quantum(with_quantum, bounds=(args.min, args.max),
                            tol=args.tol)
    print(f"optimal quantum mean: {best.quantum:.4f}")
    print(f"objective (total mean jobs): {best.objective_value:.4f}")
    print(f"model solves: {best.evaluations}")
    solved = GangSchedulingModel(with_quantum(best.quantum)).solve()
    print()
    print(solved.describe())
    return 0


def _cmd_simulate(args) -> int:
    from repro.sim import GangSimulation
    config = _parse_system(args)
    report = GangSimulation(config, seed=args.seed,
                            warmup=args.horizon * 0.1).run(args.horizon)
    print(report.describe(config.class_names))
    if args.compare:
        solved = GangSchedulingModel(config).solve()
        print("\nanalytic comparison:")
        for p, cr in enumerate(solved.classes):
            sim_n = report.mean_jobs[p]
            rel = (cr.mean_jobs - sim_n) / sim_n if sim_n else float("nan")
            print(f"  {cr.name}: model N={cr.mean_jobs:.4f} "
                  f"sim N={sim_n:.4f} ({rel:+.1%})")
    return 0


def _cmd_report(args) -> int:
    from repro.obs import render_report, summarize_trace
    try:
        summary = summarize_trace(args.trace_file)
    except FileNotFoundError:
        print(f"repro-gang: no such trace file: {args.trace_file}",
              file=sys.stderr)
        return 2
    print(render_report(summary))
    return 0


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="record a span trace of the run as JSONL to FILE "
                        "(summarize it with 'repro-gang report FILE')")
    p.add_argument("--metrics", action="store_true",
                   help="collect solver metrics and print the snapshot to "
                        "stderr on exit")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gang",
        description="Gang-scheduling analysis and simulation "
                    "(SPAA '96 reproduction)")
    parser.add_argument("--traceback", action="store_true",
                        help="dump the full traceback on solver errors "
                             "instead of a one-line message")
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a configuration analytically")
    _add_system_args(p_solve)
    _add_obs_args(p_solve)
    p_solve.add_argument("--heavy-traffic", action="store_true",
                         help="heavy-traffic model only (no fixed point)")
    p_solve.set_defaults(func=_cmd_solve)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", choices=("2", "3", "4", "5"),
                       help="figure number")
    p_fig.add_argument("--plot", action="store_true",
                       help="also render the curves as a text plot")
    p_fig.add_argument("--workers", type=int, default=None, metavar="N",
                       help="solve grid points in N parallel processes")
    p_fig.add_argument("--checkpoint", metavar="FILE", default=None,
                       help="journal completed sweep points to FILE "
                            "(JSONL) and resume from it if it exists")
    p_fig.add_argument("--backend", choices=("auto", "dense", "sparse"),
                       default="auto",
                       help="kernel selection for assembly and the QBD "
                            "solves (default: auto picks per block by "
                            "size and density)")
    _add_obs_args(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_opt = sub.add_parser("optimize",
                           help="find the quantum minimizing total mean jobs")
    _add_system_args(p_opt)
    p_opt.add_argument("--min", type=float, default=0.1,
                       help="lower bound of the quantum search (default 0.1)")
    p_opt.add_argument("--max", type=float, default=8.0,
                       help="upper bound of the quantum search (default 8)")
    p_opt.add_argument("--tol", type=float, default=0.01,
                       help="relative interval tolerance (default 0.01)")
    _add_obs_args(p_opt)
    p_opt.set_defaults(func=_cmd_optimize)

    p_sim = sub.add_parser("simulate", help="simulate a configuration")
    _add_system_args(p_sim)
    p_sim.add_argument("--horizon", type=float, default=20_000.0,
                       help="simulated time (default 20000)")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--compare", action="store_true",
                       help="also solve analytically and compare")
    _add_obs_args(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_rep = sub.add_parser("report",
                           help="summarize a --trace file: per-class/"
                                "per-stage timings and metric rollups")
    p_rep.add_argument("trace_file", metavar="TRACE",
                       help="JSONL trace file written by --trace")
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    want_metrics = bool(getattr(args, "metrics", False))
    collecting = trace_path is not None or want_metrics
    if collecting:
        from repro import obs
        obs.start(trace_path=trace_path)
    try:
        return args.func(args)
    except ReproError as exc:
        # Solver failures (instability, non-convergence, bad
        # checkpoints) are expected operational outcomes: report them
        # readably and exit 2, reserving tracebacks for --traceback.
        if args.traceback:
            raise
        print(f"repro-gang: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    finally:
        if collecting:
            from repro import obs
            from repro.obs import render_snapshot
            snap = obs.stop()
            if want_metrics:
                print(render_snapshot(snap), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
