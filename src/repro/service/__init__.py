"""The scenario service: a supervised solver daemon with a result store.

PR 5 made experiments *addressable* — a frozen, JSON-round-trippable
:class:`~repro.scenario.spec.Scenario` — and this package makes them
*servable*: a long-running daemon that accepts scenario requests over a
JSONL stdin/stdout protocol (or an optional stdlib HTTP front end),
dedupes them by canonical content hash
(:func:`repro.scenario.hashing.scenario_key`) against a persistent,
crash-safe result store, and shards sweep grids across a supervised
worker pool.  Robustness is the organizing principle:

:mod:`repro.service.protocol`
    The wire format — requests, replies, and the canonical JSONL
    encoding shared by the stdio and HTTP front ends.
:mod:`repro.service.store`
    :class:`~repro.service.store.ResultStore` — append-only JSONL
    segments with the flush-and-fsync discipline of
    :class:`~repro.resilience.checkpoint.SweepJournal`; the index is
    rebuilt on open, torn tails are truncated and mid-segment
    corruption quarantined, never fatal.
:mod:`repro.service.supervisor`
    :class:`~repro.service.supervisor.SupervisedPool` — per-slot worker
    processes with restart-on-crash, exponential backoff, and a
    crash-loop circuit breaker; a SIGKILLed worker's in-flight shard is
    requeued, bounded by a per-task kill limit.
:mod:`repro.service.daemon`
    :class:`~repro.service.daemon.ScenarioService` — request handling
    (hash, store lookup, shard, solve, assemble, persist), per-request
    deadlines with graceful degradation (a timed-out sweep returns the
    completed prefix flagged ``degraded``), overload shedding with a
    structured busy reply, and the ``serve_stdio`` / ``serve_http``
    front ends.

Everything is observable through :mod:`repro.obs` spans and metrics
(``service.requests``, ``service.shards``, ``service.store.*``,
``service.worker.*``), which is also how the chaos suite proves the
replay path: a warm second pass must show zero cold solves.
"""

from repro.service.daemon import ScenarioService, ServiceConfig
from repro.service.protocol import PROTOCOL_VERSION, Request
from repro.service.store import ResultStore
from repro.service.supervisor import SupervisedPool

__all__ = [
    "PROTOCOL_VERSION",
    "Request",
    "ResultStore",
    "ScenarioService",
    "ServiceConfig",
    "SupervisedPool",
]
