"""Wire protocol of the scenario service: JSONL requests and replies.

One request or reply per line, each a single JSON object.  The same
shapes travel over the daemon's stdin/stdout and the HTTP front end
(one request per ``POST /`` body), so a client written against either
transport speaks to both.

Requests
--------
``{"id": "r1", "op": "run", "preset": "fig2", "grid": "quick"}``
    Solve a preset scenario (optionally at a grid tier).
``{"id": "r2", "op": "run", "scenario": {...}}``
    Solve an inline scenario (the :func:`repro.serialize.scenario_to_dict`
    form).  ``engine`` may carry :class:`~repro.scenario.spec.EngineSpec`
    field overrides; ``timeout`` is a per-request wall-clock deadline in
    seconds.
``{"id": "r3", "op": "ping" | "stats" | "shutdown"}``
    Control operations: liveness, a metrics/store/pool snapshot, and a
    clean stop.

Replies
-------
Every reply echoes the request ``id`` and carries a ``status``:

``ok``
    The full result; ``cached`` tells whether it was served from the
    store without solving, and ``store_points``/``solved_points`` count
    the per-shard split.
``degraded``
    The request's deadline expired mid-sweep: ``result`` holds the
    completed prefix, with the missing grid points recorded as error
    points — the service *degrades*, it does not discard.
``error``
    The request could not be served at all; ``error`` names the
    exception type, ``message`` is the one-liner.
``busy``
    Overload shedding: the bounded request queue is full.  Retry later;
    nothing was enqueued.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "Request",
    "parse_request",
    "decode_request",
    "encode",
    "result_response",
    "error_response",
    "busy_response",
    "pong_response",
    "stats_response",
    "shutdown_response",
    "ready_banner",
]

#: Stamped into the daemon's ready banner; a client that needs a newer
#: protocol can bail out before sending anything.
PROTOCOL_VERSION = 1

#: Operations a request can carry.
OPS = ("run", "ping", "stats", "shutdown")


@dataclass(frozen=True)
class Request:
    """One validated service request."""

    id: str
    op: str = "run"
    scenario: dict | None = None
    preset: str | None = None
    grid: str = "default"
    engine: dict = field(default_factory=dict)
    timeout: float | None = None

    def __post_init__(self):
        if not self.id or not isinstance(self.id, str):
            raise ValidationError("request needs a non-empty string 'id'")
        if self.op not in OPS:
            raise ValidationError(
                f"unknown op {self.op!r}; known: {list(OPS)}")
        if self.op == "run":
            if (self.scenario is None) == (self.preset is None):
                raise ValidationError(
                    "a run request needs exactly one of 'scenario' "
                    "(inline dict) or 'preset' (name)")
            if self.scenario is not None and not isinstance(self.scenario,
                                                           dict):
                raise ValidationError("'scenario' must be a mapping")
        if self.timeout is not None and float(self.timeout) <= 0:
            raise ValidationError(
                f"timeout must be > 0 seconds, got {self.timeout}")
        object.__setattr__(self, "engine", dict(self.engine or {}))


def parse_request(data: dict) -> Request:
    """Validate a decoded request object into a :class:`Request`."""
    if not isinstance(data, dict):
        raise ValidationError(f"request must be a JSON object: {data!r}")
    unknown = set(data) - {"id", "op", "scenario", "preset", "grid",
                           "engine", "timeout"}
    if unknown:
        raise ValidationError(
            f"unknown request field(s) {sorted(unknown)}")
    return Request(
        id=data.get("id", ""),
        op=str(data.get("op", "run")),
        scenario=data.get("scenario"),
        preset=(None if data.get("preset") is None
                else str(data["preset"])),
        grid=str(data.get("grid", "default")),
        engine=data.get("engine") or {},
        timeout=(None if data.get("timeout") is None
                 else float(data["timeout"])),
    )


def decode_request(line: str) -> Request:
    """Parse one JSONL request line (malformed -> ValidationError)."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"request is not valid JSON: {exc}") from exc
    return parse_request(data)


def encode(obj: dict) -> str:
    """Canonical one-line JSON encoding (with trailing newline).

    Compact separators and non-strict float tokens (``NaN`` is legal in
    stored points), matching what :func:`json.loads` on the other side
    accepts.
    """
    return json.dumps(obj, separators=(",", ":")) + "\n"


def result_response(request_id: str, *, key: str, result: dict,
                    cached: bool, degraded: bool,
                    store_points: int, solved_points: int,
                    error_points: int, elapsed: float) -> dict:
    """A served run: the full (or degraded-prefix) result payload."""
    return {
        "id": request_id,
        "status": "degraded" if degraded else "ok",
        "key": key,
        "cached": cached,
        "store_points": store_points,
        "solved_points": solved_points,
        "error_points": error_points,
        "elapsed": round(elapsed, 6),
        "result": result,
    }


def error_response(request_id: str | None, exc: BaseException) -> dict:
    """A request that could not be served at all."""
    return {
        "id": request_id,
        "status": "error",
        "error": type(exc).__name__,
        "message": str(exc),
    }


def busy_response(request_id: str | None, *, pending: int,
                  limit: int) -> dict:
    """Overload shedding: the bounded queue is full, nothing enqueued."""
    return {
        "id": request_id,
        "status": "busy",
        "pending": pending,
        "limit": limit,
    }


def pong_response(request_id: str) -> dict:
    return {"id": request_id, "status": "ok", "op": "ping",
            "protocol": PROTOCOL_VERSION}


def stats_response(request_id: str, stats: dict) -> dict:
    return {"id": request_id, "status": "ok", "op": "stats", **stats}


def shutdown_response(request_id: str) -> dict:
    return {"id": request_id, "status": "ok", "op": "shutdown"}


def ready_banner(*, workers: int, store_dir: str) -> dict:
    """The daemon's first stdout line: clients block on it to sync."""
    return {"status": "ready", "protocol": PROTOCOL_VERSION,
            "workers": workers, "store": store_dir}
