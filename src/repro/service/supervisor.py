"""Supervised worker pool: restart, backoff, circuit breaker.

The sweep driver's ``workers=N`` pool (:mod:`repro.workloads.sweeps`)
assumes a cooperative process pool for one sweep; a long-running
service cannot — workers die (OOM killers, segfaulting BLAS, operators)
and the daemon must keep serving.  :class:`SupervisedPool` owns one
process per slot, each with its own depth-one task queue so the
supervisor always knows exactly which shard a dead worker was holding:

* a worker that exits (or is SIGKILLed) mid-task has its in-flight
  shard **requeued**, up to ``task_kill_limit`` deaths per task — a
  shard that keeps killing workers comes back as an error result, not
  an infinite crash loop;
* a dead slot is restarted with **exponential backoff**
  (``backoff_base * 2^n``, capped), and a slot that accumulates
  ``breaker_limit`` crash-restarts within ``breaker_window`` seconds
  trips its **circuit breaker** and stays down; when every slot is
  broken the remaining tasks fail fast with a structured error;
* a ``deadline`` bounds :meth:`run_tasks` — what finished is returned,
  undispatched tasks come back ``("timeout", ...)``, and still-running
  workers are deliberately terminated and restarted (a deliberate
  termination does not count against the breaker).

``workers=0`` solves inline in the calling process — the degenerate
pool used by unit tests and one-shot CLI queries.

Chaos hooks: worker processes read the ``REPRO_SERVICE_CHAOS``
environment variable at startup (see :func:`chaos_from_env`) to arm
:mod:`repro.resilience.faults` injections and/or SIGKILL themselves on
a chosen grid value — exactly once, coordinated through ``O_EXCL``
marker files so a restarted worker does not die again on the same
shard.  The variable is unset in normal operation.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
from collections import deque

from repro.errors import ValidationError
from repro.obs import log as obs_log
from repro.obs import metrics
from repro.obs.trace import (current_tracer, ensure_worker_tracer,
                             request_scope, span)

__all__ = ["CHAOS_ENV", "SupervisedPool", "chaos_from_env", "solve_shard"]

#: Environment variable holding the chaos spec for worker processes.
CHAOS_ENV = "REPRO_SERVICE_CHAOS"


def solve_shard(shard: dict) -> dict:
    """Solve one scenario dict; returns its deterministic result dict.

    This is the unit of work a pool worker executes: typically a
    single-grid-point shard of a swept scenario, or an unswept scenario
    whole.  Per-point solver failures are recorded *inside* the result
    (the sweep driver's ``skip_errors`` path), so an exception escaping
    here means the shard as a whole could not run.
    """
    from repro.scenario import run, run_result_to_dict
    from repro.serialize import scenario_from_dict

    return run_result_to_dict(run(scenario_from_dict(shard)))


def chaos_from_env() -> dict | None:
    """Arm chaos behavior requested via :data:`CHAOS_ENV`, if any.

    The spec is JSON::

        {"faults": [{"site": "sweeps.point", "raises": "ConvergenceError",
                     "keys": [1.0], "times": 1}],
         "kill": {"value": 2.0, "marker_dir": "/tmp/chaos"}}

    ``faults`` entries are forwarded to
    :func:`repro.resilience.faults.arm` with the exception looked up by
    name in :mod:`repro.errors`.  The returned dict (or ``None``) holds
    the ``kill`` spec for :func:`_maybe_die`.
    """
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return None
    cfg = json.loads(raw)
    from repro import errors as errors_mod
    from repro.resilience import faults

    for f in cfg.get("faults", ()):
        faults.arm(f["site"],
                   raises=getattr(errors_mod, f["raises"]),
                   keys=tuple(f["keys"]) if f.get("keys") else None,
                   times=f.get("times"))
    return cfg.get("kill")


def _maybe_die(kill_cfg: dict | None, value: float | None) -> None:
    """SIGKILL this worker on the chaos-chosen grid value.

    With a ``marker_dir``, at most once across all workers (``O_EXCL``
    coordination, so a restarted worker does not die again on the
    requeued shard); without one, every time — the crash-loop case the
    circuit breaker exists for.
    """
    if kill_cfg is None or value is None:
        return
    if float(value) != float(kill_cfg["value"]):
        return
    if kill_cfg.get("marker_dir"):
        marker = os.path.join(kill_cfg["marker_dir"],
                              f"killed-{float(kill_cfg['value'])}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return                      # already died here once
        os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _profile_hotspots(profiler, top: int = 30) -> list[dict]:
    """Top-``top`` functions of one cProfile run, by tottime."""
    import pstats

    stats = pstats.Stats(profiler)
    hot = [{"func": f"{os.path.basename(fn)}:{line}:{name}",
            "calls": nc, "tottime": tt, "cumtime": ct}
           for (fn, line, name), (cc, nc, tt, ct, _callers)
           in stats.stats.items()]
    hot.sort(key=lambda h: h["tottime"], reverse=True)
    return hot[:top]


def _solve_traced(shard: dict, value, rid: str | None,
                  profile: bool) -> dict:
    """Solve one shard inside its request scope, optionally profiled.

    Emits a ``"profile"`` record (top hotspots, tagged with the request
    ID) into the worker's trace file when profiling is on; the parent
    merges them and ``repro report`` sums them into the hotspot table.
    """
    with request_scope(rid) if rid is not None else _NULL_CTX:
        with span("worker.task", value=value):
            if not profile:
                return solve_shard(shard)
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                return solve_shard(shard)
            finally:
                profiler.disable()
                tracer = current_tracer()
                if tracer is not None:
                    record = {"kind": "profile", "pid": os.getpid(),
                              "hotspots": _profile_hotspots(profiler)}
                    if rid is not None:
                        record["req"] = rid
                    tracer.emit(record)


class _NullCtx:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullCtx()


def _worker_main(task_queue, result_queue, trace_base=None,
                 profile=False) -> None:
    """Worker loop: one task at a time, results keyed by task id.

    With ``trace_base`` set the worker arms its own ``.w<pid>`` tracer
    and metrics registry and emits a per-task metrics snapshot record,
    so the merged trace carries request-tagged worker spans (and, with
    ``profile``, cProfile hotspot records).
    """
    kill_cfg = chaos_from_env()
    tracer = None
    if trace_base is not None:
        tracer = ensure_worker_tracer(trace_base)
        metrics.reset()
        metrics.enable()
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, shard, value = item[0], item[1], item[2]
        rid = item[3] if len(item) > 3 else None
        _maybe_die(kill_cfg, value)
        try:
            result_queue.put(
                (task_id, "ok", _solve_traced(shard, value, rid, profile)))
        except Exception as exc:        # noqa: BLE001 — report, don't die
            result_queue.put(
                (task_id, "error", f"{type(exc).__name__}: {exc}"))
        if tracer is not None:
            snap = metrics.snapshot()
            metrics.reset()
            record = {"kind": "metrics", "pid": os.getpid(),
                      "scope": "task", **snap}
            if rid is not None:
                record["req"] = rid
            tracer.emit(record)


class _Slot:
    """One supervised worker: process, queue, and failure bookkeeping."""

    def __init__(self, index: int, ctx):
        self.index = index
        self.ctx = ctx
        self.task_queue = ctx.Queue()
        self.proc = None
        self.inflight = None            # (task_id, shard, value) or None
        self.restarts: list[float] = [] # crash-restart times (breaker)
        self.consecutive = 0            # consecutive crash-restarts
        self.not_before = 0.0           # backoff gate
        self.broken = False

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def start(self, result_queue, trace_base=None, profile=False) -> None:
        self.proc = self.ctx.Process(
            target=_worker_main,
            args=(self.task_queue, result_queue, trace_base, profile),
            daemon=True, name=f"repro-service-worker-{self.index}")
        self.proc.start()

    def dispatch(self, task) -> None:
        self.inflight = task
        self.task_queue.put(task)

    def stop(self) -> None:
        if self.proc is not None and self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5.0)
        self.proc = None


class SupervisedPool:
    """A crash-tolerant pool of shard-solving worker processes."""

    def __init__(self, workers: int, *,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 breaker_limit: int = 5,
                 breaker_window: float = 30.0,
                 task_kill_limit: int = 2,
                 trace_base: str | None = None,
                 profile: bool = False):
        if workers < 0:
            raise ValidationError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        #: Parent trace path workers sidecar onto (``<base>.w<pid>``),
        #: or ``None`` for untraced workers.
        self.trace_base = trace_base
        #: Whether workers cProfile each task (``serve --profile-workers``).
        self.profile = profile
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.breaker_limit = breaker_limit
        self.breaker_window = breaker_window
        self.task_kill_limit = task_kill_limit
        self.total_restarts = 0
        # Spawn, never fork: the daemon forks workers from a process
        # with live threads (the stdio reader, HTTP handlers), and a
        # forked child inherits every lock in whatever state the
        # moment of fork caught it — e.g. the reader thread blocks in
        # readline() *holding* sys.stdin's buffer lock, and the forked
        # child's multiprocessing bootstrap then deadlocks closing
        # sys.stdin.  Spawned workers start from a clean interpreter.
        self._ctx = mp.get_context("spawn")
        self._result_queue = self._ctx.Queue() if workers else None
        self._slots = [_Slot(i, self._ctx) for i in range(workers)]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for slot in self._slots:
            if slot.alive:
                slot.task_queue.put(None)
        for slot in self._slots:
            slot.stop()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "alive": sum(1 for s in self._slots if s.alive),
            "broken": sum(1 for s in self._slots if s.broken),
            "restarts": self.total_restarts,
        }

    # -- supervision internals ---------------------------------------------

    def _note_crash(self, slot: _Slot, now: float) -> None:
        """Book a crash against ``slot``; trip the breaker if looping."""
        slot.consecutive += 1
        slot.restarts = [t for t in slot.restarts
                         if now - t <= self.breaker_window]
        slot.restarts.append(now)
        self.total_restarts += 1
        metrics.inc("service.worker.crashes", worker=slot.index)
        obs_log.warn("worker.crash", worker=slot.index,
                     consecutive=slot.consecutive)
        if len(slot.restarts) >= self.breaker_limit:
            slot.broken = True
            metrics.inc("service.worker.breaker_trips", worker=slot.index)
            obs_log.error("worker.breaker_open", worker=slot.index,
                          restarts_in_window=len(slot.restarts),
                          window_s=self.breaker_window)
            return
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (slot.consecutive - 1)))
        slot.not_before = now + delay

    def _revive(self, slot: _Slot, now: float) -> bool:
        """Start ``slot`` if it is down, allowed, and past its backoff."""
        if slot.broken or slot.alive:
            return slot.alive
        if now < slot.not_before:
            return False
        # A dead process may leave its depth-1 queue holding the task
        # it never read; drain so the replacement starts clean.
        try:
            while True:
                slot.task_queue.get_nowait()
        except queue_mod.Empty:
            pass
        slot.start(self._result_queue, self.trace_base, self.profile)
        metrics.inc("service.worker.starts", worker=slot.index)
        obs_log.debug("worker.start", worker=slot.index,
                      worker_pid=slot.proc.pid)
        return True

    def _reap(self, results: dict, pending: deque,
              kills: dict, now: float, on_result=None) -> None:
        """Requeue (or fail) the in-flight task of every dead worker."""
        for slot in self._slots:
            if slot.inflight is None or slot.alive:
                continue
            task = slot.inflight
            slot.inflight = None
            task_id = task[0]
            if task_id in results:      # finished just before dying
                self._note_crash(slot, now)
                continue
            kills[task_id] = kills.get(task_id, 0) + 1
            metrics.inc("service.task.worker_deaths")
            if kills[task_id] > self.task_kill_limit:
                results[task_id] = (
                    "error",
                    f"shard killed {kills[task_id]} worker(s); "
                    f"giving up (task_kill_limit={self.task_kill_limit})")
                obs_log.error("task.poisoned", task=task_id,
                              worker_deaths=kills[task_id])
                if on_result is not None:
                    on_result(task_id, *results[task_id])
            else:
                pending.appendleft(task)
                obs_log.warn("task.requeue", task=task_id,
                             worker=slot.index,
                             worker_deaths=kills[task_id])
            self._note_crash(slot, now)

    # -- the work loop -----------------------------------------------------

    def run_tasks(self, tasks, *, deadline: float | None = None,
                  on_result=None) -> dict:
        """Run ``(task_id, shard_dict, value[, request_id])`` tasks;
        map id -> outcome.

        Outcomes are ``("ok", result_dict)``, ``("error", message)`` or
        ``("timeout", message)``.  The call returns when every task has
        an outcome or the deadline passes; on deadline, tasks still in
        flight are abandoned (their workers deliberately restarted) and
        returned as timeouts.

        ``on_result(task_id, status, payload)`` is invoked from the
        calling thread as each task reaches a solved or errored
        outcome — *before* the whole batch returns — so the caller can
        persist completed shards while the sweep is still running.
        Deadline timeouts are not reported through the callback.
        """
        tasks = list(tasks)
        if self.workers == 0:
            return self._run_inline(tasks, deadline, on_result)
        with span("service.pool.run", tasks=len(tasks)):
            return self._run_pool(tasks, deadline, on_result)

    def _run_inline(self, tasks, deadline, on_result) -> dict:
        results: dict = {}
        for task in tasks:
            task_id, shard, value = task[0], task[1], task[2]
            rid = task[3] if len(task) > 3 else None
            if deadline is not None and time.monotonic() >= deadline:
                results[task_id] = ("timeout",
                                    "request deadline exceeded")
                continue
            try:
                results[task_id] = (
                    "ok", _solve_traced(shard, value, rid, self.profile))
            except Exception as exc:    # noqa: BLE001 — mirror the pool
                results[task_id] = (
                    "error", f"{type(exc).__name__}: {exc}")
            if on_result is not None:
                on_result(task_id, *results[task_id])
        return results

    def _run_pool(self, tasks, deadline, on_result) -> dict:
        pending = deque(tasks)
        results: dict = {}
        kills: dict = {}
        want = {t[0] for t in tasks}
        while len(results) < len(want):
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                break
            self._reap(results, pending, kills, now, on_result)
            if all(s.broken for s in self._slots):
                for task in tasks:
                    results.setdefault(
                        task[0],
                        ("error", "worker pool circuit breaker open: "
                                  f"every slot crash-looped (limit "
                                  f"{self.breaker_limit} restarts per "
                                  f"{self.breaker_window}s)"))
                break
            for slot in self._slots:
                if not pending:
                    break
                if slot.inflight is None and self._revive(slot, now):
                    slot.dispatch(pending.popleft())
            self._drain(results, timeout=0.02, on_result=on_result)
        self._finish(tasks, results)
        return results

    def _drain(self, results: dict, *, timeout: float,
               on_result=None) -> None:
        try:
            task_id, status, payload = self._result_queue.get(
                timeout=timeout)
        except queue_mod.Empty:
            return
        while True:
            results[task_id] = (status, payload)
            if on_result is not None:
                on_result(task_id, status, payload)
            for slot in self._slots:
                if slot.inflight is not None and slot.inflight[0] == task_id:
                    slot.inflight = None
                    slot.consecutive = 0
            try:
                task_id, status, payload = self._result_queue.get_nowait()
            except queue_mod.Empty:
                return

    def _finish(self, tasks, results: dict) -> None:
        """Deadline cleanup: time out leftovers, recycle busy workers."""
        leftovers = [t for t in tasks if t[0] not in results]
        for task in leftovers:
            results[task[0]] = ("timeout", "request deadline exceeded")
        for slot in self._slots:
            if slot.inflight is not None and slot.inflight[0] in {
                    t[0] for t in leftovers}:
                # Deliberate recycle of a worker stuck past the
                # deadline; not a crash, so no breaker bookkeeping.
                slot.stop()
                slot.inflight = None
                metrics.inc("service.worker.recycled", worker=slot.index)
                obs_log.warn("worker.recycle", worker=slot.index,
                             reason="deadline")
