"""The service's persistent result store: append-only JSONL segments.

A :class:`ResultStore` maps content hashes
(:func:`~repro.scenario.hashing.scenario_key` /
:func:`~repro.scenario.hashing.point_key`) to stored result payloads.
Durability follows the :class:`~repro.resilience.checkpoint.SweepJournal`
discipline — every record is written, flushed, and ``fsync``-ed before
``put`` returns — and the same crash model applies: the only corruption
an append-only writer can produce is a torn final line.

Layout: the store directory holds numbered segments
(``seg-00000001.jsonl`` ...), each opening with a header record and
rotating at ``segment_max_bytes``.  The in-memory index is rebuilt by
replaying every segment on open, so the store has no separate index
file to corrupt.

Corruption is never fatal:

* a torn tail on the *last* segment (the crash case) is truncated in
  place and counted (``service.store.repairs``);
* undecodable lines anywhere else — bit rot, partial writes surfacing
  mid-file — are quarantined: the segment is rewritten without them via
  write-tmp/fsync/rename, the originals preserved in a
  ``*.quarantine`` sidecar (``service.store.quarantined``);
* a segment whose header is missing or wrong is set aside whole, as
  ``*.quarantine``.

Writes are idempotent by key: re-putting an existing key is a no-op, so
replaying a workload against a warm store does not grow it.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.errors import ValidationError
from repro.obs import log as obs_log
from repro.obs import metrics
from repro.obs.trace import span

__all__ = ["STORE_SCHEMA", "STORE_VERSION", "ResultStore"]

STORE_SCHEMA = "repro-result-store"
STORE_VERSION = 1

_KINDS = ("result", "point")


def _header_line() -> str:
    return json.dumps({"kind": "header", "schema": STORE_SCHEMA,
                       "version": STORE_VERSION}) + "\n"


class ResultStore:
    """Crash-safe key -> payload store over append-only JSONL segments."""

    def __init__(self, root: str | os.PathLike, *,
                 segment_max_bytes: int = 4 << 20):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if segment_max_bytes <= 0:
            raise ValidationError(
                f"segment_max_bytes must be > 0, got {segment_max_bytes}")
        self.segment_max_bytes = segment_max_bytes
        self._index: dict[tuple[str, str], dict] = {}
        self.repaired_tails = 0
        self.quarantined_lines = 0
        self.quarantined_segments = 0
        self.compactions = 0
        self._fh = None
        with span("service.store.open", root=str(self.root)):
            self._replay()
            self._open_active()

    # -- open-time replay --------------------------------------------------

    def _segments(self) -> list[pathlib.Path]:
        return sorted(self.root.glob("seg-*.jsonl"))

    def _replay(self) -> None:
        segments = self._segments()
        for i, path in enumerate(segments):
            self._load_segment(path, is_last=(i == len(segments) - 1))

    def _load_segment(self, path: pathlib.Path, *, is_last: bool) -> None:
        raw = path.read_bytes()
        if not raw:
            return          # crash between create and header write
        lines: list[tuple[int, bytes]] = []        # (byte offset, line)
        offset = 0
        for line in raw.split(b"\n"):
            if line:
                lines.append((offset, line))
            offset += len(line) + 1
        torn_tail = bool(raw) and not raw.endswith(b"\n")
        records: list[dict] = []
        bad: list[int] = []                        # indices into ``lines``
        for i, (_, line) in enumerate(lines):
            if i == len(lines) - 1 and torn_tail:
                bad.append(i)
                continue
            try:
                rec = json.loads(line.decode("utf-8"))
                if not isinstance(rec, dict) or "kind" not in rec:
                    raise ValueError("not a record object")
            except (ValueError, UnicodeDecodeError):
                bad.append(i)
                rec = None
            records.append(rec)                    # None for bad lines
        if not self._header_ok(records[0] if records else None):
            self._quarantine_segment(path)
            return
        if bad:
            self._heal(path, lines, records, bad, is_last=is_last)
        for rec in records:
            if rec is None or rec.get("kind") == "header":
                continue
            self._apply(rec)

    @staticmethod
    def _header_ok(rec: dict | None) -> bool:
        return (rec is not None and rec.get("kind") == "header"
                and rec.get("schema") == STORE_SCHEMA
                and int(rec.get("version", 0)) <= STORE_VERSION)

    def _apply(self, rec: dict) -> None:
        kind = rec.get("kind")
        if kind in _KINDS and isinstance(rec.get("key"), str):
            self._index[(kind, rec["key"])] = rec.get("value")
        # Unknown kinds are tolerated (forward compatibility).

    def _heal(self, path: pathlib.Path, lines, records, bad: list[int],
              *, is_last: bool) -> None:
        """Drop undecodable lines: truncate a torn tail, else rewrite."""
        suffix_start = len(lines) - len(bad)
        if is_last and bad == list(range(suffix_start, len(lines))):
            # Pure trailing damage on the active segment: the crash
            # case.  Truncate to the last good byte, in place.
            good_end = lines[bad[0]][0]
            with open(path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())
            self.repaired_tails += 1
            metrics.inc("service.store.repairs")
            obs_log.warn("store.tail_repair", segment=str(path),
                         dropped_lines=len(bad))
            return
        # Mid-segment damage: rewrite the good lines atomically and
        # keep the damaged original for forensics.
        quarantine = path.with_suffix(".jsonl.quarantine")
        quarantine.write_bytes(path.read_bytes())
        tmp = path.with_suffix(".jsonl.tmp")
        with open(tmp, "wb") as fh:
            for i, (_, line) in enumerate(lines):
                if i not in bad:
                    fh.write(line + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.quarantined_lines += len(bad)
        metrics.inc("service.store.quarantined", len(bad))
        obs_log.warn("store.quarantine", segment=str(path),
                     quarantined_lines=len(bad))

    def _quarantine_segment(self, path: pathlib.Path) -> None:
        path.rename(path.with_suffix(".jsonl.quarantine"))
        self.quarantined_segments += 1
        metrics.inc("service.store.quarantined_segments")
        obs_log.error("store.quarantine_segment", segment=str(path))

    # -- appending ---------------------------------------------------------

    def _open_active(self) -> None:
        segments = self._segments()
        if segments and segments[-1].stat().st_size < self.segment_max_bytes:
            self._active = segments[-1]
        else:
            seq = len(segments) + 1
            while True:                            # skip quarantined names
                candidate = self.root / f"seg-{seq:08d}.jsonl"
                if not candidate.exists():
                    break
                seq += 1
            self._active = candidate
        self._fh = open(self._active, "a", encoding="utf-8")
        if self._fh.tell() == 0:
            self._fh.write(_header_line())
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def _rotate_if_full(self) -> None:
        if self._fh.tell() >= self.segment_max_bytes:
            self._fh.close()
            self._fh = None
            self._open_active()

    def _put(self, kind: str, key: str, value: dict) -> bool:
        if self._fh is None:
            raise ValidationError("result store is closed")
        if (kind, key) in self._index:
            return False                           # idempotent
        self._rotate_if_full()
        line = json.dumps({"kind": kind, "key": key, "value": value},
                          separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._index[(kind, key)] = value
        metrics.inc("service.store.writes", kind=kind)
        return True

    # -- public API --------------------------------------------------------

    def put_result(self, key: str, value: dict) -> bool:
        """Store a full run result; returns False if already present."""
        return self._put("result", key, value)

    def put_point(self, key: str, value: dict) -> bool:
        """Store one grid point's shard result."""
        return self._put("point", key, value)

    def get_result(self, key: str) -> dict | None:
        return self._index.get(("result", key))

    def get_point(self, key: str) -> dict | None:
        return self._index.get(("point", key))

    def compact(self) -> dict:
        """Rewrite the live records into one fresh segment.

        An append-only store never reclaims anything: healed rewrites
        leave ``*.quarantine`` sidecars behind and a long-lived daemon
        accumulates segments whose records have long been superseded in
        the index.  Compaction writes the current index — exactly the
        live records, one line per key — into a fresh first segment,
        then drops every other segment and every quarantine sidecar.

        Crash-safe by ordering: the compacted segment is fully written
        and fsync-ed to a temporary file, atomically renamed over
        ``seg-00000001.jsonl``, and only then are the remaining old
        segments unlinked.  A crash at any point leaves segments whose
        replay yields a superset of the live records, never a loss.
        Returns a summary dict (segment/byte counts and sidecars
        dropped); rotation restarts from the single compacted segment.
        """
        if self._fh is None:
            raise ValidationError("result store is closed")
        with span("service.store.compact", root=str(self.root)):
            self._fh.close()
            self._fh = None
            old_segments = self._segments()
            old_bytes = sum(p.stat().st_size for p in old_segments)
            tmp = self.root / "compact.jsonl.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(_header_line())
                for (kind, key), value in self._index.items():
                    fh.write(json.dumps(
                        {"kind": kind, "key": key, "value": value},
                        separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            target = self.root / "seg-00000001.jsonl"
            os.replace(tmp, target)
            for path in old_segments:
                if path != target:
                    path.unlink(missing_ok=True)
            sidecars = 0
            for path in self.root.glob("*.quarantine"):
                path.unlink()
                sidecars += 1
            self._open_active()
            self.compactions += 1
            metrics.inc("service.store.compactions")
            new_bytes = target.stat().st_size
            return {
                "segments_before": len(old_segments),
                "records": len(self._index),
                "reclaimed_bytes": max(0, old_bytes - new_bytes),
                "quarantine_files_dropped": sidecars,
            }

    def __len__(self) -> int:
        return len(self._index)

    def stats(self) -> dict:
        return {
            "segments": len(self._segments()),
            "results": sum(1 for k, _ in self._index if k == "result"),
            "points": sum(1 for k, _ in self._index if k == "point"),
            "repaired_tails": self.repaired_tails,
            "quarantined_lines": self.quarantined_lines,
            "quarantined_segments": self.quarantined_segments,
            "compactions": self.compactions,
        }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
