"""The scenario service daemon: dedupe, shard, solve, degrade, persist.

:class:`ScenarioService` is the transport-independent core — one
:meth:`~ScenarioService.handle` call per request — wrapped by two thin
front ends: :meth:`~ScenarioService.serve_stdio` (JSONL over
stdin/stdout, the daemon mode behind ``repro-gang serve``) and
:meth:`~ScenarioService.serve_http` (a stdlib ``ThreadingHTTPServer``).

A run request flows::

    request -> Scenario -> scenario_key -> full-result store hit?  yes: reply
        no: shard the grid -> point_key per value -> store hits fill in
            misses solved on the SupervisedPool under the request deadline
        -> clean points persisted as each shard completes
        -> result assembled in grid order
        -> full result persisted iff every point is clean -> reply

Robustness semantics:

* **Graceful degradation** — when the per-request deadline expires
  mid-sweep, the completed prefix is returned as a partial result with
  ``status: "degraded"``; the missing grid values appear as explicit
  ``DeadlineExceeded`` error points.  Failed or degraded points are
  *never* persisted, so a later replay re-solves them cleanly.
* **Overload shedding** — both front ends bound their request queues at
  ``max_pending`` and answer overflow with a structured busy reply
  instead of queueing unboundedly.
* **Store discipline** — results are only ever appended through
  :class:`~repro.service.store.ResultStore`, so a SIGKILLed daemon
  loses at most a torn tail line, repaired on the next open; replaying
  the same requests reproduces byte-identical results (each sweep point
  is an independent solve, so a shard equals the corresponding point of
  a full-grid run bit for bit).
* **Adjacency-preserving shards** — when the scenario engages the
  batched sweep engine (``engine.batch_points > 1``), cold points are
  grouped into shards of up to ``batch_points`` *consecutive* grid
  values (a store-hit gap splits the run), so continuation warm-starts
  survive sharding: every point in a shard seeds from its real sweep
  neighbor.  ``batch_points`` is part of result identity
  (:func:`~repro.scenario.hashing.point_key`), so batched and
  per-point store entries never alias; within a batched request,
  point-level entries carry the warm-started values, identical to the
  per-point path within the engine's 1e-8 parity budget.

Every stage is observable: ``service.requests{status=...}``,
``service.shards{source=store|solve|error|timeout}``,
``service.request.elapsed``, plus the store/pool/worker metrics of the
sibling modules.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import ReproError, ValidationError
from repro.obs import log as obs_log
from repro.obs import metrics
from repro.obs import prom
from repro.obs import trace as obs_trace
from repro.obs.trace import request_scope, span
from repro.scenario import (
    OutputSpec,
    RunPoint,
    get_scenario,
    point_key,
    run_point_to_dict,
    scenario_key,
)
from repro.serialize import scenario_from_dict, scenario_to_dict
from repro.service import protocol
from repro.service.protocol import Request
from repro.service.store import ResultStore
from repro.service.supervisor import SupervisedPool

__all__ = ["ServiceConfig", "ScenarioService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`ScenarioService` needs to run."""

    store_dir: str
    workers: int = 0
    max_pending: int = 8
    default_timeout: float | None = None
    segment_max_bytes: int = 4 << 20
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    breaker_limit: int = 5
    breaker_window: float = 30.0
    task_kill_limit: int = 2
    trace: str | None = None
    compact_on_start: bool = False
    #: Structured JSON-lines event log (``serve --log FILE``); rotated
    #: by size (``log_max_bytes``, keeping ``log_backups`` old files).
    log: str | None = None
    log_max_bytes: int = 16 << 20
    log_backups: int = 3
    #: cProfile every worker task and emit hotspot records into the
    #: trace (``serve --profile-workers``).
    profile_workers: bool = False
    #: Ring-buffer depth of per-request summaries behind ``stats``.
    recent_requests: int = 100

    def __post_init__(self):
        if self.max_pending < 1:
            raise ValidationError(
                f"max_pending must be >= 1, got {self.max_pending}")
        if (self.default_timeout is not None
                and self.default_timeout <= 0):
            raise ValidationError(
                f"default_timeout must be > 0, got {self.default_timeout}")


class ScenarioService:
    """The transport-independent scenario service core."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.store: ResultStore | None = None
        self.pool: SupervisedPool | None = None
        self._armed_obs = False
        self._armed_log = False
        self._lock = threading.Lock()
        self.shutting_down = False
        self.started_mono: float | None = None
        self.started_wall: float | None = None
        #: Distinct service-assigned IDs: ``<client id>.<seq>`` — two
        #: requests reusing one client id still trace separately.
        self._rid_seq = itertools.count(1)
        #: status -> handled-request count (includes busy sheds).
        self.request_counts: dict[str, int] = {}
        #: Newest-last summaries of recent requests (``stats`` reply).
        self.recent: deque = deque(maxlen=config.recent_requests)

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "ScenarioService":
        cfg = self.config
        # Arm observability unless the embedding process already did:
        # cache-hit accounting (the chaos suite's "zero cold solves"
        # check) needs the metrics registry live.
        if obs_trace.current_tracer() is None and not metrics.enabled():
            from repro import obs
            obs.start(trace_path=cfg.trace, collect_metrics=True)
            self._armed_obs = True
        if cfg.log is not None and not obs_log.configured():
            obs_log.configure(cfg.log, max_bytes=cfg.log_max_bytes,
                              backups=cfg.log_backups)
            self._armed_log = True
        self.started_mono = time.monotonic()
        self.started_wall = time.time()
        self.store = ResultStore(cfg.store_dir,
                                 segment_max_bytes=cfg.segment_max_bytes)
        if cfg.compact_on_start:
            self.store.compact()
        tracer = obs_trace.current_tracer()
        self.pool = SupervisedPool(
            cfg.workers, backoff_base=cfg.backoff_base,
            backoff_cap=cfg.backoff_cap, breaker_limit=cfg.breaker_limit,
            breaker_window=cfg.breaker_window,
            task_kill_limit=cfg.task_kill_limit,
            trace_base=str(tracer.path) if tracer is not None else None,
            profile=cfg.profile_workers)
        obs_log.info("service.start", store_dir=str(cfg.store_dir),
                     workers=cfg.workers,
                     profile_workers=cfg.profile_workers,
                     trace=str(tracer.path) if tracer is not None else None)
        return self

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        # Fold worker trace sidecars in while the tracer is still open,
        # so one request reads as one timeline across pids.
        tracer = obs_trace.current_tracer()
        if tracer is not None:
            obs_trace.merge_worker_traces(tracer)
        if self.store is not None:
            self.store.close()
            self.store = None
        obs_log.info("service.stop",
                     requests={k: v for k, v
                               in sorted(self.request_counts.items())})
        if self._armed_obs:
            from repro import obs
            obs.stop()
            self._armed_obs = False
        if self._armed_log:
            obs_log.shutdown()
            self._armed_log = False

    def __enter__(self) -> "ScenarioService":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request handling --------------------------------------------------

    def handle_line(self, line: str) -> dict:
        """Decode and handle one JSONL request line; never raises."""
        try:
            request = protocol.decode_request(line)
        except ReproError as exc:
            self._count("error")
            obs_log.warn("request.reject", error=type(exc).__name__,
                         message=str(exc))
            return protocol.error_response(self._peek_id(line), exc)
        return self.handle(request)

    def handle(self, request: Request | dict) -> dict:
        """Serve one request; every failure becomes an error reply.

        Run requests execute inside a :func:`request_scope` carrying a
        service-assigned request ID (``<client id>.<seq>``): every span
        the daemon emits, every structured-log event, and — because the
        ID travels in the task tuples — every worker span for the
        request shares it.
        """
        try:
            if isinstance(request, dict):
                request = protocol.parse_request(request)
            if request.op == "ping":
                return protocol.pong_response(request.id)
            if request.op == "stats":
                return protocol.stats_response(request.id, self._stats())
            if request.op == "shutdown":
                self.shutting_down = True
                obs_log.info("service.shutdown_requested",
                             client_id=request.id)
                return protocol.shutdown_response(request.id)
            with self._lock:
                rid = f"{request.id or 'req'}.{next(self._rid_seq)}"
                with request_scope(rid):
                    response = self._handle_run(request)
                    self._note_request(rid, request, response)
                return response
        except ReproError as exc:
            return self._handle_error(request, exc)
        except Exception as exc:        # noqa: BLE001 — daemon must not die
            return self._handle_error(request, exc)

    def _handle_error(self, request, exc: Exception) -> dict:
        self._count("error")
        rid = request.id if isinstance(request, Request) else None
        obs_log.error("request.error", client_id=rid,
                      error=type(exc).__name__, message=str(exc))
        return protocol.error_response(rid, exc)

    def _count(self, status: str) -> None:
        metrics.inc("service.requests", status=status)
        self.request_counts[status] = (
            self.request_counts.get(status, 0) + 1)

    def _note_request(self, rid: str, request: Request,
                      response: dict) -> None:
        """Push one finished run into the recent-requests ring."""
        summary = {
            "request_id": rid,
            "client_id": request.id,
            "status": response.get("status"),
            "key": response.get("key"),
            "cached": response.get("cached"),
            "elapsed": response.get("elapsed"),
            "store_points": response.get("store_points"),
            "solved_points": response.get("solved_points"),
            "error_points": response.get("error_points"),
        }
        self.recent.append(summary)
        obs_log.info("request.done", **{k: v for k, v in summary.items()
                                        if k != "request_id"})

    @staticmethod
    def _peek_id(line: str) -> str | None:
        """Best-effort request id from an undecodable line."""
        try:
            data = json.loads(line)
            rid = data.get("id") if isinstance(data, dict) else None
            return rid if isinstance(rid, str) else None
        except (ValueError, AttributeError):
            return None

    def _stats(self) -> dict:
        health = self.health()
        return {
            "store": self.store.stats(),
            "pool": self.pool.stats(),
            "metrics": metrics.snapshot() if metrics.enabled() else {},
            "uptime_seconds": health["uptime_seconds"],
            "started": self.started_wall,
            "health": health,
            "requests": {
                "total": sum(self.request_counts.values()),
                "by_status": dict(sorted(self.request_counts.items())),
            },
            "recent": list(self.recent),
        }

    def health(self) -> dict:
        """Liveness summary behind ``GET /healthz`` (503 when degraded).

        Degraded means the service cannot currently make progress on a
        run request: the store or pool is closed, every worker slot's
        circuit breaker is open, or shutdown has been requested.
        """
        pool_stats = self.pool.stats() if self.pool is not None else None
        store_ok = self.store is not None
        pool_ok = (pool_stats is not None
                   and (pool_stats["workers"] == 0
                        or pool_stats["broken"] < pool_stats["workers"]))
        ok = store_ok and pool_ok and not self.shutting_down
        uptime = (time.monotonic() - self.started_mono
                  if self.started_mono is not None else 0.0)
        return {
            "status": "ok" if ok else "degraded",
            "uptime_seconds": uptime,
            "checks": {
                "store": "ok" if store_ok else "closed",
                "pool": ("closed" if pool_stats is None
                         else "ok" if pool_ok else "breaker_open"),
                "accepting": not self.shutting_down,
            },
        }

    def metrics_exposition(self) -> str:
        """The ``GET /metrics`` body: registry snapshot plus service
        gauges (health, uptime, pool and store state), rendered as
        Prometheus text by :func:`repro.obs.prom.render_exposition`."""
        snap = (metrics.snapshot() if metrics.enabled()
                else {"counters": {}, "gauges": {}, "histograms": {}})
        health = self.health()
        gauges = snap.setdefault("gauges", {})
        gauges["service.up"] = 1.0
        gauges["service.healthy"] = (
            1.0 if health["status"] == "ok" else 0.0)
        gauges["service.uptime_seconds"] = health["uptime_seconds"]
        if self.pool is not None:
            for k, v in self.pool.stats().items():
                if isinstance(v, (int, float)):
                    gauges[f"service.pool.{k}"] = float(v)
        if self.store is not None:
            for k, v in self.store.stats().items():
                if isinstance(v, (int, float)):
                    gauges[f"service.store.{k}"] = float(v)
        return prom.render_exposition(snap)

    # -- the run path ------------------------------------------------------

    def _build_scenario(self, request: Request):
        if request.preset is not None:
            scenario = get_scenario(request.preset, grid=request.grid)
        else:
            scenario = scenario_from_dict(request.scenario)
        if request.engine:
            scenario = scenario.with_engine(**request.engine)
        # Execution is the service's business: drop the caller's
        # worker/checkpoint knobs and any trace/solver-metrics output
        # request (both are excluded from the content hash anyway).
        # Metric *selectors* survive the strip — they are part of
        # result identity (the stored points carry the percentile
        # columns they name).
        return dataclasses.replace(
            scenario,
            engine=dataclasses.replace(scenario.engine,
                                       workers=None, checkpoint=None),
            output=OutputSpec(measures=scenario.output.measures,
                              metrics=scenario.output.metrics))

    def _handle_run(self, request: Request) -> dict:
        t0 = time.monotonic()
        scenario = self._build_scenario(request)
        key = scenario_key(scenario)
        timeout = (request.timeout if request.timeout is not None
                   else self.config.default_timeout)
        deadline = None if timeout is None else t0 + timeout
        with span("service.request", key=key[:12],
                  scenario=scenario.name or "(inline)"):
            cached = self.store.get_result(key)
            if cached is not None:
                self._count("cached")
                metrics.observe("service.request.elapsed",
                                time.monotonic() - t0)
                return protocol.result_response(
                    request.id, key=key, result=cached, cached=True,
                    degraded=False, store_points=len(cached["points"]),
                    solved_points=0, error_points=0,
                    elapsed=time.monotonic() - t0)
            response = self._solve_request(request, scenario, key, t0,
                                           deadline)
        self._count(response["status"])
        metrics.observe("service.request.elapsed", time.monotonic() - t0)
        return response

    @staticmethod
    def _derived_budget(scenario, deadline: float | None,
                        cold_points: int) -> float | None:
        """Per-point solve budget carved out of the request deadline.

        When the request carries a deadline but the scenario sets no
        ``solve_budget`` of its own, each cold point gets an equal
        slice of the remaining time.  A single divergent solve then
        aborts inside its slice (one explicit error point) instead of
        silently eating the whole request's deadline and degrading
        every point queued behind it.  Point cache keys are computed
        from the *unbudgeted* scenario, so the derived budget never
        changes result identity — a budget-limited solve either
        finishes with the same numbers or fails and is not persisted.
        """
        if deadline is None or cold_points == 0:
            return None
        if scenario.engine.solve_budget is not None:
            return None                 # the scenario's own budget wins
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None                 # the pool times the points out
        return remaining / cold_points

    @staticmethod
    def _plan_shards(scenario, misses: list) -> list[list]:
        """Group cold points into adjacency-preserving shards.

        ``misses`` is ``(grid index, value, point key)`` tuples in grid
        order.  Without batching every point is its own shard (the
        historical behavior).  With ``engine.batch_points > 1``, runs
        of *consecutive* grid indices are chunked up to that size — a
        store-hit gap splits the run, because continuation across the
        gap would seed from a neighbor the shard does not contain.
        """
        batch = int(getattr(scenario.engine, "batch_points", 0) or 0)
        size = batch if (batch > 1 and scenario.axis is not None) else 1
        chunks: list[list] = []
        run: list = []
        prev = None
        for item in misses:
            if run and (len(run) >= size or item[0] != prev + 1):
                chunks.append(run)
                run = []
            run.append(item)
            prev = item[0]
        if run:
            chunks.append(run)
        return chunks

    def _solve_request(self, request: Request, scenario, key: str,
                       t0: float, deadline: float | None) -> dict:
        values = (list(scenario.grid()) if scenario.axis is not None
                  else [None])
        shards: dict[int, tuple[str, object]] = {}
        misses = []                     # (index, value, pk) in grid order
        for i, v in enumerate(values):
            pk = point_key(scenario, v)
            hit = self.store.get_point(pk)
            if hit is not None:
                shards[i] = ("store", hit)
                metrics.inc("service.shards", source="store")
            else:
                misses.append((i, v, pk))
        if misses:
            budget = self._derived_budget(scenario, deadline, len(misses))
            chunks = self._plan_shards(scenario, misses)
            tasks = []
            chunk_by_task: dict[int, list] = {}
            for chunk in chunks:
                shard = (scenario.with_grid([v for _, v, _ in chunk])
                         if scenario.axis is not None else scenario)
                if budget is not None:
                    shard = shard.with_engine(solve_budget=budget)
                task_id = chunk[0][0]
                # The 4th element carries the request ID into the spawn
                # worker, where it scopes every span the shard emits.
                tasks.append((task_id, scenario_to_dict(shard),
                              chunk[0][1], obs_trace.current_request_id()))
                chunk_by_task[task_id] = chunk

            def persist(task_id, status, payload):
                # Clean points hit the store the moment their shard
                # completes, not after the whole sweep: a daemon
                # SIGKILLed mid-sweep loses only its in-flight shards,
                # and the replay resumes from the persisted prefix.
                if status != "ok":
                    return
                for k, (_, _, pk) in enumerate(chunk_by_task[task_id]):
                    pt = payload["points"][k]
                    if pt.get("error") is None:
                        self.store.put_point(
                            pk, {**payload, "points": [pt]})

            outcomes = self.pool.run_tasks(
                tasks, deadline=deadline, on_result=persist)
            for task_id, chunk in chunk_by_task.items():
                status, payload = outcomes.get(
                    task_id, ("timeout", "request deadline exceeded"))
                for k, (i, _, _) in enumerate(chunk):
                    if status == "ok":
                        shards[i] = ("solve",
                                     {**payload,
                                      "points": [payload["points"][k]]})
                    else:
                        shards[i] = (status, payload)
                    metrics.inc("service.shards", source=shards[i][0])
        return self._assemble(request, scenario, key, values, shards, t0)

    def _assemble(self, request: Request, scenario, key: str, values,
                  shards, t0: float) -> dict:
        meta = next((payload for kind, payload in shards.values()
                     if kind in ("store", "solve")), None)
        points = []
        degraded = False
        store_points = solved_points = 0
        for i, v in enumerate(values):
            kind, payload = shards[i]
            if kind in ("store", "solve"):
                points.append(payload["points"][0])
                if kind == "store":
                    store_points += 1
                else:
                    solved_points += 1
                continue
            if kind == "timeout":
                degraded = True
                error = f"DeadlineExceeded: {payload}"
            else:
                error = str(payload)
            points.append(run_point_to_dict(
                RunPoint(value=v, error=error, converged=False)))
        result = {
            "engine": (meta["engine"] if meta is not None
                       else scenario.engine.engine),
            "parameter": scenario.parameter,
            "class_names": (list(meta["class_names"]) if meta is not None
                            else list(self._class_names(scenario, values))),
            "points": points,
        }
        metric_names = (meta.get("metric_names") if meta is not None
                        else None)
        if metric_names is None and getattr(
                scenario.output, "wants_distributions", False):
            metric_names = scenario.output.metrics
        if metric_names:
            result["metric_names"] = list(metric_names)
        error_points = sum(1 for pt in points if pt.get("error"))
        if not degraded and error_points == 0:
            self.store.put_result(key, result)
        return protocol.result_response(
            request.id, key=key, result=result, cached=False,
            degraded=degraded, store_points=store_points,
            solved_points=solved_points, error_points=error_points,
            elapsed=time.monotonic() - t0)

    @staticmethod
    def _class_names(scenario, values):
        return scenario.system.config_for(values[0]).class_names

    # -- front ends --------------------------------------------------------

    def serve_stdio(self, stdin=None, stdout=None) -> None:
        """JSONL daemon loop: requests on stdin, replies on stdout.

        Emits a ready banner first (clients block on it), then one
        reply line per request.  A reader thread keeps draining stdin
        so overload is *shed* — lines beyond ``max_pending`` queued
        requests get an immediate busy reply — rather than
        backpressured into the peer's pipe buffer.

        Intake is *fair*, not FIFO: queued lines are grouped by their
        client ID and served round-robin across clients (FIFO within
        each client), so one chatty client that stuffs the queue with
        a burst cannot starve a second client's single request — it is
        served after at most one of the burst's requests, not after
        all of them.
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        out_lock = threading.Lock()

        def emit(obj: dict) -> None:
            with out_lock:
                stdout.write(protocol.encode(obj))
                stdout.flush()

        emit(protocol.ready_banner(workers=self.config.workers,
                                   store_dir=str(self.config.store_dir)))
        intake = threading.Condition()
        #: client id -> FIFO of ``(enqueue time, line)``.
        queues: dict[str | None, deque] = {}
        #: Clients with queued work, in round-robin turn order.
        turn: deque = deque()
        state = {"total": 0, "eof": False}

        def reader() -> None:
            for line in stdin:
                if not line.strip():
                    continue
                with intake:
                    if state["total"] >= self.config.max_pending:
                        self._count("busy")
                        obs_log.warn("request.shed", front_end="stdio",
                                     pending=state["total"],
                                     limit=self.config.max_pending)
                        emit(protocol.busy_response(
                            self._peek_id(line), pending=state["total"],
                            limit=self.config.max_pending))
                        continue
                    cid = self._peek_id(line)
                    q = queues.get(cid)
                    if q is None:
                        q = queues[cid] = deque()
                        turn.append(cid)
                    q.append((time.monotonic(), line))
                    state["total"] += 1
                    intake.notify()
            with intake:
                state["eof"] = True
                intake.notify()

        def next_line():
            """The next request under round-robin fairness."""
            with intake:
                while state["total"] == 0 and not state["eof"]:
                    intake.wait()
                if state["total"] == 0:
                    return None
                cid = turn.popleft()
                q = queues[cid]
                item = q.popleft()
                if q:
                    turn.append(cid)    # more queued: back of the line
                else:
                    del queues[cid]
                state["total"] -= 1
                return item

        threading.Thread(target=reader, daemon=True,
                         name="repro-service-reader").start()
        while True:
            item = next_line()
            if item is None:
                break
            enqueued, line = item
            metrics.observe("service.queue.wait",
                            time.monotonic() - enqueued)
            response = self.handle_line(line)
            emit(response)
            if self.shutting_down:
                break

    def serve_http(self, host: str = "127.0.0.1", port: int = 0):
        """An HTTP front end over the same protocol (stdlib only).

        ``POST /`` takes one request object per body and returns the
        reply; ``GET /stats`` returns the stats reply, ``GET /metrics``
        the Prometheus exposition, and ``GET /healthz`` the health
        summary (200 ok / 503 degraded) — all unauthenticated.
        Concurrency beyond ``max_pending`` in-flight requests is shed
        with a 503 busy reply.  Returns the (already bound, not yet
        serving) ``ThreadingHTTPServer``; run it with
        ``serve_forever()`` and stop it with ``shutdown()``.
        """
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        service = self
        gate = threading.BoundedSemaphore(self.config.max_pending)

        class Handler(BaseHTTPRequestHandler):
            def _reply(self, code: int, payload: dict) -> None:
                body = protocol.encode(payload).encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_POST(self):          # noqa: N802 — http.server API
                if not gate.acquire(blocking=False):
                    service._count("busy")
                    obs_log.warn("request.shed", front_end="http",
                                 limit=service.config.max_pending)
                    self._reply(503, protocol.busy_response(
                        None, pending=service.config.max_pending,
                        limit=service.config.max_pending))
                    return
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    line = self.rfile.read(length).decode("utf-8")
                    response = service.handle_line(line)
                finally:
                    gate.release()
                code = (200 if response["status"] in ("ok", "degraded")
                        else 400)
                self._reply(code, response)
                if service.shutting_down:
                    threading.Thread(target=self.server.shutdown,
                                     daemon=True).start()

            def _reply_text(self, code: int, body: str,
                            content_type: str) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self):           # noqa: N802 — http.server API
                path = self.path.rstrip("/")
                if path in ("", "/stats"):
                    self._reply(200, protocol.stats_response(
                        "stats", service._stats()))
                elif path == "/metrics":
                    self._reply_text(200, service.metrics_exposition(),
                                     prom.CONTENT_TYPE)
                elif path == "/healthz":
                    health = service.health()
                    code = 200 if health["status"] == "ok" else 503
                    self._reply(code, health)
                else:
                    self._reply(404, {"status": "error",
                                      "error": "NotFound",
                                      "message": self.path})

            def log_message(self, *args):
                pass                    # stay quiet; obs covers it

        return ThreadingHTTPServer((host, port), Handler)
