"""JSON (de)serialization of model configurations.

Real deployments keep scheduler configurations in files; this module
round-trips :class:`~repro.phasetype.PhaseType`,
:class:`~repro.core.config.ClassConfig` and
:class:`~repro.core.config.SystemConfig` through plain JSON-compatible
dictionaries, and the CLI's ``--config`` flag consumes the same format.

Format example::

    {
      "processors": 8,
      "empty_queue_policy": "switch",
      "classes": [
        {
          "name": "interactive",
          "partition_size": 1,
          "arrival":  {"kind": "exponential", "rate": 2.0},
          "service":  {"kind": "erlang", "k": 2, "mean": 1.0},
          "quantum":  {"kind": "exponential", "mean": 1.0},
          "overhead": {"kind": "exponential", "mean": 0.01}
        }
      ]
    }

Distribution ``kind``s: ``exponential`` (``rate`` or ``mean``),
``erlang`` (``k`` + ``rate``/``mean``), ``hyperexponential``
(``probs`` + ``rates``), ``coxian`` (``rates`` +
``completion_probs``), or ``ph`` (raw ``alpha`` + ``S``).  Arbitrary
PH objects serialize as ``ph``.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.config import ClassConfig, SystemConfig
from repro.errors import ValidationError
from repro.phasetype import (
    PhaseType,
    coxian,
    erlang,
    exponential,
    hyperexponential,
)

__all__ = [
    "phase_type_to_dict",
    "phase_type_from_dict",
    "system_to_dict",
    "system_from_dict",
    "save_system",
    "load_system",
]


def phase_type_to_dict(dist: PhaseType) -> dict:
    """Serialize a PH distribution (always as the raw ``ph`` kind)."""
    return {
        "kind": "ph",
        "alpha": [float(x) for x in np.asarray(dist.alpha)],
        "S": [[float(x) for x in row] for row in np.asarray(dist.S)],
    }


def phase_type_from_dict(data: dict) -> PhaseType:
    """Build a PH distribution from its dictionary form."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ValidationError(f"distribution spec must have a 'kind': {data!r}")
    kind = data["kind"]
    if kind == "exponential":
        if "rate" in data:
            return exponential(float(data["rate"]))
        return exponential(mean=float(data["mean"]))
    if kind == "erlang":
        k = int(data["k"])
        if "rate" in data:
            return erlang(k, rate=float(data["rate"]))
        return erlang(k, mean=float(data["mean"]))
    if kind == "hyperexponential":
        return hyperexponential([float(p) for p in data["probs"]],
                                [float(r) for r in data["rates"]])
    if kind == "coxian":
        return coxian([float(r) for r in data["rates"]],
                      [float(p) for p in data["completion_probs"]])
    if kind == "ph":
        return PhaseType(data["alpha"], data["S"])
    raise ValidationError(f"unknown distribution kind {kind!r}")


def system_to_dict(config: SystemConfig) -> dict:
    """Serialize a full system configuration."""
    return {
        "processors": config.processors,
        "empty_queue_policy": config.empty_queue_policy,
        "classes": [
            {
                "name": cls.name,
                "partition_size": cls.partition_size,
                "arrival": phase_type_to_dict(cls.arrival),
                "service": phase_type_to_dict(cls.service),
                "quantum": phase_type_to_dict(cls.quantum),
                "overhead": phase_type_to_dict(cls.overhead),
            }
            for cls in config.classes
        ],
    }


def system_from_dict(data: dict) -> SystemConfig:
    """Build a :class:`SystemConfig` from its dictionary form."""
    if not isinstance(data, dict):
        raise ValidationError("system spec must be a mapping")
    try:
        classes = tuple(
            ClassConfig(
                partition_size=int(spec["partition_size"]),
                arrival=phase_type_from_dict(spec["arrival"]),
                service=phase_type_from_dict(spec["service"]),
                quantum=phase_type_from_dict(spec["quantum"]),
                overhead=phase_type_from_dict(spec["overhead"]),
                name=str(spec.get("name", "")),
            )
            for spec in data["classes"]
        )
    except KeyError as exc:
        raise ValidationError(f"missing field in system spec: {exc}") from exc
    return SystemConfig(
        processors=int(data["processors"]),
        classes=classes,
        empty_queue_policy=str(data.get("empty_queue_policy", "switch")),
    )


def save_system(config: SystemConfig, path: str | pathlib.Path) -> None:
    """Write a configuration to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(system_to_dict(config), indent=2) + "\n")


def load_system(path: str | pathlib.Path) -> SystemConfig:
    """Read a configuration from a JSON file."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from exc
    return system_from_dict(data)
