"""JSON (de)serialization of model configurations.

Real deployments keep scheduler configurations in files; this module
round-trips :class:`~repro.phasetype.PhaseType`,
:class:`~repro.core.config.ClassConfig` and
:class:`~repro.core.config.SystemConfig` through plain JSON-compatible
dictionaries, and the CLI's ``--config`` flag consumes the same format.

Format example::

    {
      "processors": 8,
      "empty_queue_policy": "switch",
      "classes": [
        {
          "name": "interactive",
          "partition_size": 1,
          "arrival":  {"kind": "exponential", "rate": 2.0},
          "service":  {"kind": "erlang", "k": 2, "mean": 1.0},
          "quantum":  {"kind": "exponential", "mean": 1.0},
          "overhead": {"kind": "exponential", "mean": 0.01}
        }
      ]
    }

Distribution ``kind``s: ``exponential`` (``rate`` or ``mean``),
``erlang`` (``k`` + ``rate``/``mean``), ``hyperexponential``
(``probs`` + ``rates``), ``coxian`` (``rates`` +
``completion_probs``), or ``ph`` (raw ``alpha`` + ``S``).  Arbitrary
PH objects serialize as ``ph``.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.config import ClassConfig, SystemConfig
from repro.errors import ValidationError
from repro.phasetype import (
    PhaseType,
    coxian,
    erlang,
    exponential,
    hyperexponential,
)

__all__ = [
    "phase_type_to_dict",
    "phase_type_from_dict",
    "system_to_dict",
    "system_from_dict",
    "save_system",
    "load_system",
    "SCENARIO_SCHEMA_VERSION",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
]

#: Maximum scenario schema version this reader understands.  The
#: loader accepts any version up to the current one and tolerates
#: unknown fields, so old readers reject genuinely newer files while
#: new readers keep consuming old ones.  Writers stamp the *lowest*
#: version that can express the scenario — non-default metric
#: selectors (``output.metrics`` beyond ``("mean",)``) need version 3,
#: a non-default scheduling policy needs version 2; everything else
#: stays version 1, keeping plain files byte-identical to pre-policy
#: output (and readable by old readers).
SCENARIO_SCHEMA_VERSION = 3


def phase_type_to_dict(dist: PhaseType) -> dict:
    """Serialize a PH distribution (always as the raw ``ph`` kind)."""
    return {
        "kind": "ph",
        "alpha": [float(x) for x in np.asarray(dist.alpha)],
        "S": [[float(x) for x in row] for row in np.asarray(dist.S)],
    }


def phase_type_from_dict(data: dict) -> PhaseType:
    """Build a PH distribution from its dictionary form."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ValidationError(f"distribution spec must have a 'kind': {data!r}")
    kind = data["kind"]
    if kind == "exponential":
        if "rate" in data:
            return exponential(float(data["rate"]))
        return exponential(mean=float(data["mean"]))
    if kind == "erlang":
        k = int(data["k"])
        if "rate" in data:
            return erlang(k, rate=float(data["rate"]))
        return erlang(k, mean=float(data["mean"]))
    if kind == "hyperexponential":
        return hyperexponential([float(p) for p in data["probs"]],
                                [float(r) for r in data["rates"]])
    if kind == "coxian":
        return coxian([float(r) for r in data["rates"]],
                      [float(p) for p in data["completion_probs"]])
    if kind == "ph":
        return PhaseType(data["alpha"], data["S"])
    raise ValidationError(f"unknown distribution kind {kind!r}")


def system_to_dict(config: SystemConfig) -> dict:
    """Serialize a full system configuration."""
    return {
        "processors": config.processors,
        "empty_queue_policy": config.empty_queue_policy,
        "classes": [
            {
                "name": cls.name,
                "partition_size": cls.partition_size,
                "arrival": phase_type_to_dict(cls.arrival),
                "service": phase_type_to_dict(cls.service),
                "quantum": phase_type_to_dict(cls.quantum),
                "overhead": phase_type_to_dict(cls.overhead),
            }
            for cls in config.classes
        ],
    }


def system_from_dict(data: dict) -> SystemConfig:
    """Build a :class:`SystemConfig` from its dictionary form."""
    if not isinstance(data, dict):
        raise ValidationError("system spec must be a mapping")
    try:
        classes = tuple(
            ClassConfig(
                partition_size=int(spec["partition_size"]),
                arrival=phase_type_from_dict(spec["arrival"]),
                service=phase_type_from_dict(spec["service"]),
                quantum=phase_type_from_dict(spec["quantum"]),
                overhead=phase_type_from_dict(spec["overhead"]),
                name=str(spec.get("name", "")),
            )
            for spec in data["classes"]
        )
    except KeyError as exc:
        raise ValidationError(f"missing field in system spec: {exc}") from exc
    return SystemConfig(
        processors=int(data["processors"]),
        classes=classes,
        empty_queue_policy=str(data.get("empty_queue_policy", "switch")),
    )


# --------------------------------------------------------------------------
# Scenarios (versioned, forward-tolerant)
# --------------------------------------------------------------------------

def scenario_to_dict(scenario) -> dict:
    """Serialize a :class:`~repro.scenario.spec.Scenario`.

    The output is canonical: every field is emitted (including
    defaults), so ``dict -> Scenario -> dict`` is byte-stable for any
    dict this function produced.
    """
    from repro.scenario.spec import Scenario

    if not isinstance(scenario, Scenario):
        raise ValidationError(
            f"expected a Scenario, got {type(scenario).__name__}")
    sys_spec = scenario.system
    system: dict = {}
    if sys_spec.preset is not None:
        system["preset"] = sys_spec.preset
        system["args"] = dict(sys_spec.args)
    else:
        system["config"] = system_to_dict(sys_spec.config)
    if sys_spec.axis is not None:
        system["axis"] = {
            "parameter": sys_spec.axis.parameter,
            "values": [float(v) for v in sys_spec.axis.values],
        }
    # A non-default policy is the only version-2 feature; round-robin
    # (always normalized to ``policy=None`` by SystemSpec) is omitted
    # entirely so pre-policy files and hashes are reproduced exactly.
    if sys_spec.policy is not None:
        from repro.policy import policy_to_dict
        system["policy"] = policy_to_dict(sys_spec.policy)
    eng = scenario.engine
    out = scenario.output
    # Metric selectors beyond the default ``("mean",)`` are the only
    # version-3 feature; default-selector scenarios keep emitting the
    # legacy boolean observability toggle in the ``metrics`` slot, so
    # pre-distribution files, hashes and old readers are untouched.
    from repro.metrics.selectors import DEFAULT_METRICS
    wants_distributions = tuple(out.metrics) != DEFAULT_METRICS
    if wants_distributions:
        version = 3
    else:
        version = 2 if sys_spec.policy is not None else 1
    return {
        "schema": "repro-scenario",
        "version": version,
        "name": scenario.name,
        "description": scenario.description,
        "system": system,
        "engine": {
            "engine": eng.engine,
            "backend": eng.backend,
            "reduction": eng.reduction,
            "rmatrix_method": eng.rmatrix_method,
            "max_iterations": eng.max_iterations,
            "tol": eng.tol,
            "heavy_traffic_only": eng.heavy_traffic_only,
            "solve_budget": eng.solve_budget,
            "workers": eng.workers,
            "checkpoint": eng.checkpoint,
            # ``batch_points`` appears only when engaged, so files and
            # hashes written before the batched engine existed (and all
            # per-point scenarios) are reproduced byte-for-byte.
            **({"batch_points": eng.batch_points}
               if eng.batch_points else {}),
            "horizon": eng.horizon,
            "seed": eng.seed,
            "replications": eng.replications,
            "warmup_fraction": eng.warmup_fraction,
            "max_evaluations": eng.max_evaluations,
        },
        "output": {
            "measures": list(out.measures),
            "trace": out.trace,
            **({"metrics": list(out.metrics),
                **({"collect_metrics": True} if out.collect_metrics else {})}
               if wants_distributions
               else {"metrics": out.collect_metrics}),
        },
    }


#: ``EngineSpec`` field -> JSON coercion, for the tolerant loader.
_ENGINE_FIELD_TYPES = {
    "engine": str, "backend": str, "reduction": str, "rmatrix_method": str,
    "max_iterations": int, "tol": float, "heavy_traffic_only": bool,
    "horizon": float, "seed": int, "replications": int,
    "warmup_fraction": float, "max_evaluations": int,
    "batch_points": int,
    # Optional (None-able) fields.
    "workers": int, "checkpoint": str, "solve_budget": float,
}
_ENGINE_OPTIONAL = ("workers", "checkpoint", "solve_budget")


def _engine_from_dict(data: dict):
    from repro.scenario.spec import EngineSpec

    if not isinstance(data, dict):
        raise ValidationError(f"engine spec must be a mapping: {data!r}")
    kwargs = {}
    for name, coerce in _ENGINE_FIELD_TYPES.items():
        if name not in data:
            continue                    # absent -> default (tolerant)
        value = data[name]
        if value is None:
            if name not in _ENGINE_OPTIONAL:
                raise ValidationError(f"engine field {name!r} cannot be null")
            continue
        kwargs[name] = coerce(value)
    return EngineSpec(**kwargs)         # unknown fields ignored


def _system_from_dict(data: dict):
    from repro.scenario.spec import SweepAxis, SystemSpec

    if not isinstance(data, dict):
        raise ValidationError(f"system spec must be a mapping: {data!r}")
    axis = None
    if data.get("axis") is not None:
        spec = data["axis"]
        try:
            axis = SweepAxis(str(spec["parameter"]),
                             tuple(float(v) for v in spec["values"]))
        except KeyError as exc:
            raise ValidationError(
                f"missing field in sweep axis: {exc}") from exc
    policy = None
    if data.get("policy") is not None:
        from repro.policy import policy_from_dict
        policy = policy_from_dict(data["policy"])
    if "config" in data:
        return SystemSpec(config=system_from_dict(data["config"]),
                          axis=axis, policy=policy)
    if "preset" in data:
        return SystemSpec(preset=str(data["preset"]),
                          args=dict(data.get("args", {})),
                          axis=axis, policy=policy)
    raise ValidationError(
        "system spec needs either a 'preset' or a 'config'")


def _output_from_dict(data: dict):
    from repro.scenario.spec import OutputSpec

    if not isinstance(data, dict):
        raise ValidationError(f"output spec must be a mapping: {data!r}")
    kwargs = {}
    if "measures" in data:
        kwargs["measures"] = tuple(str(m) for m in data["measures"])
    if data.get("trace") is not None:
        kwargs["trace"] = str(data["trace"])
    if "metrics" in data:
        value = data["metrics"]
        if isinstance(value, bool):
            # v1/v2 files: ``metrics`` was the observability toggle.
            kwargs["collect_metrics"] = value
        else:
            kwargs["metrics"] = tuple(str(m) for m in value)
    if data.get("collect_metrics"):
        kwargs["collect_metrics"] = True
    return OutputSpec(**kwargs)


def scenario_from_dict(data: dict):
    """Build a :class:`~repro.scenario.spec.Scenario` from its dict form.

    Tolerant by design: unknown fields anywhere in the tree are
    ignored (forward compatibility), absent fields fall back to the
    spec defaults, and only a ``version`` *newer* than this reader is
    rejected.
    """
    from repro.scenario.spec import EngineSpec, OutputSpec, Scenario

    if not isinstance(data, dict):
        raise ValidationError("scenario spec must be a mapping")
    schema = data.get("schema", "repro-scenario")
    if schema != "repro-scenario":
        raise ValidationError(
            f"not a scenario file (schema {schema!r})")
    version = int(data.get("version", 1))
    if version > SCENARIO_SCHEMA_VERSION:
        raise ValidationError(
            f"scenario schema version {version} is newer than this "
            f"reader (max {SCENARIO_SCHEMA_VERSION}); upgrade repro")
    if "system" not in data:
        raise ValidationError("scenario spec needs a 'system' entry")
    return Scenario(
        name=str(data.get("name", "")),
        description=str(data.get("description", "")),
        system=_system_from_dict(data["system"]),
        engine=(_engine_from_dict(data["engine"])
                if "engine" in data else EngineSpec()),
        output=(_output_from_dict(data["output"])
                if "output" in data else OutputSpec()),
    )


def save_scenario(scenario, path: str | pathlib.Path) -> None:
    """Write a scenario to a JSON file (canonical form)."""
    pathlib.Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2) + "\n")


def load_scenario(path: str | pathlib.Path):
    """Read a scenario from a JSON file.

    Unreadable paths (missing file, directory, permissions) and
    malformed JSON both raise :class:`~repro.errors.ValidationError`,
    so operational mistakes surface as the CLI's standard one-line
    error instead of a traceback.
    """
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from exc
    except OSError as exc:
        raise ValidationError(
            f"cannot read scenario file {path}: {exc}") from exc
    return scenario_from_dict(data)


def save_system(config: SystemConfig, path: str | pathlib.Path) -> None:
    """Write a configuration to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(system_to_dict(config), indent=2) + "\n")


def load_system(path: str | pathlib.Path) -> SystemConfig:
    """Read a configuration from a JSON file.

    Unreadable paths and malformed JSON raise
    :class:`~repro.errors.ValidationError` (see :func:`load_scenario`).
    """
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from exc
    except OSError as exc:
        raise ValidationError(
            f"cannot read config file {path}: {exc}") from exc
    return system_from_dict(data)
