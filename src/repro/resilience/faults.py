"""Deterministic fault injection at named sites in the solver stack.

Every recovery path in the resilience layer (fallback chains, retry
budgets, sweep checkpointing, saturation pinning) must be *provable* in
tests.  Real convergence failures are hard to construct on demand, so
instrumented call sites throughout the library consult this registry
and, when a matching fault is armed, raise a configured exception or
corrupt a result value — deterministically, keyed on call counts.

Instrumented sites
------------------
``"rmatrix.solve"``
    Entry of :func:`repro.qbd.rmatrix.solve_R`; ``key`` is the method
    name (``"logreduction"``, ``"cr"``, ``"substitution"``,
    ``"spectral"``).  Raise-style.
``"rmatrix.result"``
    The solved ``R`` before it is returned; ``key`` is the method
    name.  Corruption-style (e.g. ``corrupt="nan"`` poisons the
    matrix, exercising the fallback chain's result validation).
``"qbd.solve"``
    Entry of :func:`repro.qbd.stationary.solve_qbd` (no key).
``"fixed_point.class_solve"``
    The per-class QBD solve inside the fixed-point driver; ``key`` is
    the class index.  Injecting
    :class:`~repro.errors.UnstableSystemError` here drives the
    optimistic-bootstrap and saturation-pinning paths.
``"sweeps.point"``
    One grid point of :func:`repro.workloads.sweeps.sweep`; ``key`` is
    the swept value.
``"kernels.sparse"``
    The sparse kernel paths: ``key`` is ``"boundary"`` (entry of the
    block-tridiagonal boundary solver) or ``"refine_R"`` (the
    matrix-free Newton refinement).  Raise-style; injecting
    :class:`~repro.errors.ConvergenceError` here proves the dense
    fallbacks — :func:`repro.qbd.boundary.solve_boundary` reverts to
    the dense system and
    :func:`repro.resilience.fallback.resilient_solve_R` downgrades the
    failing attempt's backend to ``"dense"``.

Usage (tests)
-------------
>>> from repro.errors import ConvergenceError
>>> from repro.resilience import faults
>>> with faults.inject("rmatrix.solve", raises=ConvergenceError,
...                    keys=("logreduction",)):
...     pass  # every logreduction solve_R call now raises
>>> faults.active()
False

When nothing is armed the per-call overhead is a truthiness check on
an empty dict.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from repro.obs import metrics

__all__ = ["FaultSpec", "arm", "disarm", "inject", "active",
           "maybe_fault", "maybe_corrupt", "spec_for"]


@dataclass
class FaultSpec:
    """One armed fault and its firing bookkeeping.

    Attributes
    ----------
    site:
        The instrumented site name this fault is armed at.
    raises:
        Exception instance, exception class, or zero-argument callable
        returning an exception.  ``None`` for corruption-only faults.
    corrupt:
        ``"nan"`` (replace arrays/floats with NaN of the same shape)
        or a callable ``value -> value``.  ``None`` for raise-only
        faults.
    keys:
        When given, only calls whose ``key`` is in this tuple are
        considered (and counted) by this fault.
    calls:
        When given, fire only on these 0-based matching-call indices.
    times:
        When given, fire at most this many times in total.
    seen, fired:
        Matching calls observed / faults actually delivered — exposed
        so tests can assert "the completed point was *not* re-solved".
    """

    site: str
    raises: Any = None
    corrupt: str | Callable[[Any], Any] | None = None
    keys: tuple | None = None
    calls: frozenset[int] | None = None
    times: int | None = None
    seen: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def _matches(self, key: Any) -> bool:
        return self.keys is None or key in self.keys

    def _should_fire(self) -> bool:
        # ``seen`` has already been incremented for the current call.
        if self.calls is not None and (self.seen - 1) not in self.calls:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return True

    def _exception(self) -> BaseException:
        exc = self.raises
        if isinstance(exc, BaseException):
            return exc
        if isinstance(exc, type) and issubclass(exc, BaseException):
            return exc(f"injected fault at {self.site!r}")
        return exc()

    def _corrupted(self, value: Any) -> Any:
        if callable(self.corrupt):
            return self.corrupt(value)
        if self.corrupt == "nan":
            if isinstance(value, np.ndarray):
                return np.full_like(np.asarray(value, dtype=np.float64),
                                    np.nan)
            return float("nan")
        raise ValueError(f"unknown corruption mode {self.corrupt!r}")


#: Armed faults, one per site.  Empty in normal operation.
_ARMED: dict[str, FaultSpec] = {}


def arm(site: str, *, raises: Any = None,
        corrupt: str | Callable[[Any], Any] | None = None,
        keys: tuple | None = None, calls: frozenset[int] | set[int] | None = None,
        times: int | None = None) -> FaultSpec:
    """Arm a fault at ``site``, replacing any fault already armed there."""
    if raises is None and corrupt is None:
        raise ValueError("a fault must either raise or corrupt")
    spec = FaultSpec(site=site, raises=raises, corrupt=corrupt,
                     keys=tuple(keys) if keys is not None else None,
                     calls=frozenset(calls) if calls is not None else None,
                     times=times)
    _ARMED[site] = spec
    return spec


def disarm(site: str | None = None) -> None:
    """Disarm one site, or every site when ``site`` is ``None``."""
    if site is None:
        _ARMED.clear()
    else:
        _ARMED.pop(site, None)


def active() -> bool:
    """Whether any fault is currently armed."""
    return bool(_ARMED)


def spec_for(site: str) -> FaultSpec | None:
    """The armed :class:`FaultSpec` at ``site``, if any."""
    return _ARMED.get(site)


@contextmanager
def inject(site: str, **kwargs) -> Iterator[FaultSpec]:
    """Context manager: :func:`arm` on entry, restore the site on exit."""
    previous = _ARMED.get(site)
    spec = arm(site, **kwargs)
    try:
        yield spec
    finally:
        if _ARMED.get(site) is spec:
            if previous is None:
                _ARMED.pop(site, None)
            else:
                _ARMED[site] = previous


def maybe_fault(site: str, key: Any = None) -> None:
    """Raise the armed exception for ``site``/``key``, if one should fire."""
    if not _ARMED:
        return
    spec = _ARMED.get(site)
    if spec is None or spec.raises is None or not spec._matches(key):
        return
    spec.seen += 1
    if spec._should_fire():
        spec.fired += 1
        metrics.inc("faults.fired", site=site, kind="raise")
        raise spec._exception()


def maybe_corrupt(site: str, value: Any, key: Any = None) -> Any:
    """Return ``value``, corrupted if a fault at ``site``/``key`` fires."""
    if not _ARMED:
        return value
    spec = _ARMED.get(site)
    if spec is None or spec.corrupt is None or not spec._matches(key):
        return value
    spec.seen += 1
    if spec._should_fire():
        spec.fired += 1
        metrics.inc("faults.fired", site=site, kind="corrupt")
        return spec._corrupted(value)
    return value
