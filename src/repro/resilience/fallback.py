"""Multi-method ``R``-matrix solving: fallback chains, retries, budgets.

A single :class:`~repro.errors.ConvergenceError` in one R-matrix solve
used to abort an entire fixed-point run (and with it a whole sweep
point).  :func:`resilient_solve_R` instead walks a *chain* of solver
methods — by default the configured method first, then the remaining
algorithms of :data:`repro.qbd.rmatrix.METHODS` — retrying each with
adjusted tolerances and mild regularization, validating every result,
and recording a structured :class:`AttemptRecord` per attempt so the
caller can see which method succeeded and why the others failed.

Retry semantics
---------------
The two failure modes call for opposite tolerance adjustments:

* the iteration *ran out of budget* (``ConvergenceError``) — retry
  with a **relaxed** tolerance and a mild diagonal regularization
  (a tiny uniform killing rate on ``A1``), which rescues
  nearly-converged and nearly-singular iterations;
* the iteration *converged to a bad answer* (non-finite entries,
  quadratic residual too large, ``sp(R) >= 1``) — retry with a
  **tightened** tolerance, which rescues premature stopping.

Every candidate ``R`` — including regularized ones — is accepted only
if the *unregularized* quadratic residual passes the policy's
acceptance threshold, so fallback never trades a loud failure for a
silently wrong answer.

Budgets
-------
:class:`RetryPolicy` carries a per-solve iteration budget (summed over
all attempts) and an optional wall-clock budget.  Exhausting either
raises :class:`~repro.errors.SolverBudgetExceededError` with the
attempt history attached as ``exc.report``.  The wall-clock budget is
enforced both between attempts and *inside* each attempt: the
per-attempt deadline is threaded into the solver's iteration loops,
so a single runaway attempt (large blocks creeping toward an unstable
fixed point) is cut off mid-iteration instead of running to its full
iteration cap first.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import (
    ConvergenceError,
    SolverBudgetExceededError,
    ValidationError,
)
from repro.obs import metrics

__all__ = ["RetryPolicy", "ResiliencePolicy", "AttemptRecord", "SolveReport",
           "DEFAULT_POLICY", "default_chain", "resilient_solve_R"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry and budget knobs of a resilient solve."""

    #: Attempts per method (the initial try counts as one).
    max_attempts_per_method: int = 2
    #: Tolerance factor for retries after an *invalid result*
    #: (``< 1``: tighten).
    tol_tighten: float = 1e-2
    #: Tolerance factor for retries after a *convergence failure*
    #: (``> 1``: relax).
    tol_relax: float = 1e2
    #: Uniform killing rate (relative to ``max |diag A1|``) added to the
    #: diagonal of ``A1`` on convergence-failure retries.
    regularization: float = 1e-10
    #: Iteration budget summed across every attempt of the solve;
    #: ``None`` disables the check.
    max_total_iterations: int | None = 400_000
    #: Wall-clock budget in seconds for the whole solve.  Checked
    #: between attempts *and* threaded into every attempt's iteration
    #: loop as a deadline (see ``solve_R(..., deadline=)``), so one
    #: runaway attempt cannot exceed the budget by more than a single
    #: iteration.  ``None`` disables the check.
    wall_clock_budget: float | None = None


@dataclass(frozen=True)
class ResiliencePolicy:
    """What :func:`resilient_solve_R` is allowed to do.

    Attributes
    ----------
    chain:
        Method names to try in order.  ``None`` (default) derives the
        chain from the configured primary method via
        :func:`default_chain`.
    retry:
        The :class:`RetryPolicy` applied to each method.
    acceptance_residual:
        A candidate ``R`` is accepted only if
        ``max|R^2 A2 + R A1 + A0| <= acceptance_residual * max(1, max|A1|)``.
    """

    chain: tuple[str, ...] | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    acceptance_residual: float = 1e-8


#: The policy :func:`repro.qbd.stationary.solve_qbd` applies by default.
DEFAULT_POLICY = ResiliencePolicy()


@dataclass(frozen=True)
class AttemptRecord:
    """One solve attempt: what was tried and how it ended.

    ``outcome`` is ``"ok"``, ``"error"`` (the solver raised), or
    ``"invalid"`` (the solver returned, but the result failed
    validation — ``error`` then holds the reason).
    """

    method: str
    attempt: int
    tol: float
    regularization: float
    outcome: str
    error: str | None
    iterations: int | None
    residual: float | None
    elapsed: float
    #: Kernel backend the attempt ran with (``None``: pre-backend
    #: record, equivalent to ``"auto"``).
    backend: str | None = None

    def describe(self) -> str:
        detail = "" if self.error is None else f": {self.error}"
        bk = f" backend={self.backend}" if self.backend else ""
        return (f"{self.method}[#{self.attempt} tol={self.tol:.3g}"
                f"{f' reg={self.regularization:.1g}' if self.regularization else ''}"
                f"{bk}]"
                f" -> {self.outcome}{detail}")

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AttemptRecord":
        # Tolerate records written before ``backend`` existed.
        return cls(**{f: data.get(f, None) for f in cls.__dataclass_fields__})


@dataclass
class SolveReport:
    """Structured record of a resilient solve.

    ``method`` is the winning method (``None`` if every attempt
    failed); ``attempts`` lists every try in order.
    """

    attempts: list[AttemptRecord] = field(default_factory=list)
    method: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.method is not None

    @property
    def fallbacks(self) -> int:
        """Failed attempts before the winning (or final) one."""
        n = len(self.attempts)
        return n - 1 if self.succeeded else n

    @property
    def total_elapsed(self) -> float:
        return sum(a.elapsed for a in self.attempts)

    @property
    def total_iterations(self) -> int:
        return sum(a.iterations or 0 for a in self.attempts)

    def describe(self) -> str:
        head = (f"resilient solve: method={self.method or 'FAILED'} "
                f"({len(self.attempts)} attempt(s), "
                f"{self.total_elapsed:.3g}s)")
        return "\n".join([head] + ["  " + a.describe() for a in self.attempts])

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return {"method": self.method,
                "attempts": [a.to_dict() for a in self.attempts]}

    @classmethod
    def from_dict(cls, data: dict) -> "SolveReport":
        return cls(method=data.get("method"),
                   attempts=[AttemptRecord.from_dict(a)
                             for a in data.get("attempts", [])])


def default_chain(method: str = "logreduction") -> tuple[str, ...]:
    """The fallback chain: ``method`` first, then the other algorithms
    in :data:`~repro.qbd.rmatrix.METHODS` order."""
    from repro.qbd.rmatrix import METHODS
    if method not in METHODS:
        raise ValidationError(
            f"unknown R-matrix method {method!r}; use one of {METHODS}")
    return (method,) + tuple(m for m in METHODS if m != method)


def _validate_R(R: np.ndarray, A0, A1, A2, *, threshold: float) -> str | None:
    """``None`` if ``R`` is acceptable, else a human-readable reason."""
    if not np.all(np.isfinite(R)):
        return "non-finite entries in R"
    residual = float(np.max(np.abs(R @ R @ A2 + R @ A1 + A0)))
    scale = max(1.0, float(np.max(np.abs(A1))))
    if residual > threshold * scale:
        return f"quadratic residual {residual:.3g} above threshold"
    sp = float(np.max(np.abs(np.linalg.eigvals(R))))
    if sp >= 1.0:
        return f"sp(R)={sp:.6g} >= 1 (not the minimal solution)"
    return None


def _method_max_iter(method: str) -> int:
    # Substitution counts linear-convergence steps; the reduction
    # methods count quadratic doubling steps.
    return 100_000 if method == "substitution" else 64


def resilient_solve_R(A0, A1, A2, *, method: str = "logreduction",
                      tol: float = 1e-12,
                      policy: ResiliencePolicy | None = None,
                      R0: np.ndarray | None = None,
                      backend: str | None = None,
                      ) -> tuple[np.ndarray, SolveReport]:
    """Solve ``R^2 A2 + R A1 + A0 = 0`` with fallback, retries, budgets.

    Returns ``(R, report)`` on the first attempt that passes
    validation.  ``R0`` is an optional warm-start iterate forwarded to
    every :func:`~repro.qbd.rmatrix.solve_R` attempt (each method uses
    or ignores it as described there); the attempt is still validated
    against the acceptance residual, so a stale seed can only cost a
    retry, never a wrong answer.

    The chain is backend-aware: ``backend`` is forwarded to every
    attempt, and the first failure of an attempt whose backend engages
    the sparse kernels downgrades the remaining attempts of that
    method (and the rest of the chain) to ``backend="dense"`` — a
    sparse-path defect costs one extra attempt, never the solve.  The
    downgrade attempt is granted on top of
    ``max_attempts_per_method`` and skips the tolerance adjustments,
    since the failure says nothing about the tolerance.

    Raises
    ------
    SolverBudgetExceededError
        The iteration or wall-clock budget ran out first.  The partial
        attempt history is attached as ``exc.report``.
    ConvergenceError
        Every method and retry failed within budget (``exc.report``
        attached).
    """
    from repro.kernels import select_backend
    from repro.qbd.rmatrix import solve_R

    policy = policy or DEFAULT_POLICY
    retry = policy.retry
    chain = policy.chain or default_chain(method)
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    d = A1.shape[0]

    def _sparse_active(bk: str | None) -> bool:
        # Mirrors refine_R: the only sparse path in the R solve is the
        # matrix-free Newton correction on the d^2-sized linearization.
        return select_backend(bk, d * d, site="rsolve") == "sparse"

    cur_backend = backend

    report = SolveReport()
    t0 = time.monotonic()
    deadline = (t0 + retry.wall_clock_budget
                if retry.wall_clock_budget is not None else None)
    iterations_used = 0
    best_residual: float | None = None

    def _out_of_budget() -> None:
        elapsed = time.monotonic() - t0
        if retry.wall_clock_budget is not None \
                and elapsed > retry.wall_clock_budget:
            exc = SolverBudgetExceededError(
                f"R-matrix solve exceeded its wall-clock budget "
                f"({elapsed:.3g}s > {retry.wall_clock_budget:.3g}s) after "
                f"{len(report.attempts)} attempt(s)",
                iterations=iterations_used, residual=best_residual,
                elapsed=elapsed, budget=retry.wall_clock_budget)
            exc.report = report
            raise exc
        if retry.max_total_iterations is not None \
                and iterations_used >= retry.max_total_iterations:
            exc = SolverBudgetExceededError(
                f"R-matrix solve exceeded its iteration budget "
                f"({iterations_used} >= {retry.max_total_iterations}) after "
                f"{len(report.attempts)} attempt(s)",
                iterations=iterations_used, residual=best_residual,
                elapsed=time.monotonic() - t0,
                budget=float(retry.max_total_iterations))
            exc.report = report
            raise exc

    for m in chain:
        attempt_tol = tol
        regularization = 0.0
        budget_attempts = max(1, retry.max_attempts_per_method)
        if _sparse_active(cur_backend):
            budget_attempts += 1  # the dense downgrade is a bonus attempt
        attempt = 0
        while attempt < budget_attempts:
            _out_of_budget()
            max_iter = _method_max_iter(m)
            if retry.max_total_iterations is not None:
                max_iter = min(max_iter,
                               retry.max_total_iterations - iterations_used)
            A1_eff = A1
            if regularization > 0.0:
                scale = float(np.max(np.abs(np.diag(A1)))) or 1.0
                A1_eff = A1 - regularization * scale * np.eye(A1.shape[0])
            t_attempt = time.monotonic()
            try:
                R, info = solve_R(A0, A1_eff, A2, method=m, tol=attempt_tol,
                                  max_iter=max_iter, R0=R0,
                                  backend=cur_backend, return_info=True,
                                  deadline=deadline)
            except (ConvergenceError, np.linalg.LinAlgError) as exc:
                elapsed = time.monotonic() - t_attempt
                iters = getattr(exc, "iterations", None)
                resid = getattr(exc, "residual", None)
                iterations_used += iters if iters is not None else max_iter
                if resid is not None:
                    best_residual = resid if best_residual is None \
                        else min(best_residual, resid)
                report.attempts.append(AttemptRecord(
                    method=m, attempt=attempt, tol=attempt_tol,
                    regularization=regularization, outcome="error",
                    error=f"{type(exc).__name__}: {exc}",
                    iterations=iters, residual=resid, elapsed=elapsed,
                    backend=cur_backend))
                metrics.inc("fallback.attempts", method=m, outcome="error")
                attempt += 1
                if _sparse_active(cur_backend):
                    # Sparse-path failure: fall back to the dense chain
                    # without touching the tolerance schedule.
                    cur_backend = "dense"
                    metrics.inc("fallback.backend_downgrades", method=m)
                    continue
                # Ran out of steam: relax the tolerance, add a tiny
                # killing rate to break near-singularity.
                attempt_tol *= retry.tol_relax
                regularization = retry.regularization \
                    if regularization == 0.0 else regularization * 100.0
                continue
            elapsed = time.monotonic() - t_attempt
            reason = _validate_R(R, A0, A1, A2,
                                 threshold=policy.acceptance_residual)
            if reason is None:
                # Validate against the *unregularized* blocks; the
                # solver's own diagnostics supply the iteration count
                # that used to be discarded on success.
                report.attempts.append(AttemptRecord(
                    method=m, attempt=attempt, tol=attempt_tol,
                    regularization=regularization, outcome="ok", error=None,
                    iterations=info.iterations, residual=float(np.max(np.abs(
                        R @ R @ A2 + R @ A1 + A0))), elapsed=elapsed,
                    backend=cur_backend))
                metrics.inc("fallback.attempts", method=m, outcome="ok")
                metrics.inc("fallback.solves", status="ok",
                            fallback=attempt > 0 or m != chain[0])
                report.method = m
                return np.clip(R, 0.0, None), report
            iterations_used += _method_max_iter(m) if m != "spectral" else 1
            report.attempts.append(AttemptRecord(
                method=m, attempt=attempt, tol=attempt_tol,
                regularization=regularization, outcome="invalid",
                error=reason, iterations=info.iterations,
                residual=info.residual, elapsed=elapsed, backend=cur_backend))
            metrics.inc("fallback.attempts", method=m, outcome="invalid")
            attempt += 1
            if _sparse_active(cur_backend):
                # A sparse-path attempt produced a bad answer: retry
                # dense before blaming the tolerance.
                cur_backend = "dense"
                metrics.inc("fallback.backend_downgrades", method=m)
                continue
            # Converged to a bad answer: tighten, drop regularization.
            attempt_tol *= retry.tol_tighten
            regularization = 0.0

    # A deadline that fired inside the last attempt must still surface
    # as a budget error, not a generic every-method-failed one.
    _out_of_budget()
    metrics.inc("fallback.solves", status="failed")
    exc = ConvergenceError(
        f"every R-matrix method failed ({len(report.attempts)} attempts "
        f"over chain {chain}); last: {report.attempts[-1].describe()}",
        iterations=iterations_used, residual=best_residual)
    exc.report = report
    raise exc
