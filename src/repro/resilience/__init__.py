"""Resilience layer: fallback chains, retry budgets, checkpoints, faults.

Production sweeps solve thousands of models; this package makes partial
failure a first-class, *recoverable* outcome instead of a fatal one:

:mod:`~repro.resilience.fallback`
    Multi-method ``R``-matrix solving with per-method retries
    (tightened tolerances, mild regularization), iteration and
    wall-clock budgets, and a structured :class:`SolveReport` of every
    attempt.
:mod:`~repro.resilience.checkpoint`
    Crash-safe JSONL journaling for parameter sweeps — completed points
    survive a crash and are never re-solved on resume.
:mod:`~repro.resilience.faults`
    Deterministic fault injection at named sites throughout the solver
    stack, so every recovery path is provable in tests.
"""

from repro.resilience.checkpoint import SweepJournal
from repro.resilience.fallback import (
    AttemptRecord,
    ResiliencePolicy,
    RetryPolicy,
    SolveReport,
    default_chain,
    resilient_solve_R,
)
from repro.resilience.faults import (
    FaultSpec,
    arm,
    disarm,
    inject,
    maybe_fault,
    maybe_corrupt,
)

__all__ = [
    "AttemptRecord",
    "ResiliencePolicy",
    "RetryPolicy",
    "SolveReport",
    "SweepJournal",
    "default_chain",
    "resilient_solve_R",
    "FaultSpec",
    "arm",
    "disarm",
    "inject",
    "maybe_fault",
    "maybe_corrupt",
]
