"""Crash-safe JSONL journaling for long-running sweeps.

A sweep over thousands of grid points must not lose every solved point
to one crash.  :class:`SweepJournal` appends one JSON record per
completed point (flushed and fsync'd, so a kill between points loses
nothing) and loads tolerantly: a trailing partial line — the signature
of a crash mid-write — is dropped, not fatal.

The journal is self-describing: the first record is a header carrying
the sweep's identity (parameter name, class names).  Resuming against
a journal whose header disagrees raises
:class:`~repro.errors.CheckpointError` instead of silently mixing
incompatible runs.

Records are plain JSON objects.  Python's ``json`` round-trips floats
exactly (shortest-repr encoding) and accepts the non-strict ``NaN`` /
``Infinity`` tokens the solver's saturated/failed points produce, so a
resumed sweep reproduces byte-identical results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CheckpointError
from repro.obs import metrics

__all__ = ["SweepJournal"]

_HEADER_KIND = "sweep-header"


class SweepJournal:
    """Append-only JSONL journal at ``path``.

    Use :meth:`load` to recover the header and completed records,
    :meth:`write_header` once per fresh journal, and :meth:`append`
    after each completed point.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def repair(self) -> bool:
        """Truncate a partial trailing line left by a crash mid-write.

        Must be called before appending to a resumed journal —
        otherwise the next record would concatenate onto the partial
        line and corrupt it.  Returns whether anything was removed.
        """
        if not self.path.exists():
            return False
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return False
        os.truncate(self.path, data.rfind(b"\n") + 1)
        return True

    def load(self) -> tuple[dict | None, list[dict]]:
        """Read the journal: ``(header, records)``.

        Tolerates a truncated or corrupt trailing line (crash
        mid-write); corrupt lines *before* the last one indicate real
        damage and raise :class:`~repro.errors.CheckpointError`.
        """
        if not self.path.exists():
            return None, []
        lines = self.path.read_text().splitlines()
        header: dict | None = None
        records: list[dict] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # partial final write from a crash — drop it
                raise CheckpointError(
                    f"corrupt journal {self.path}: unparseable line {i + 1} "
                    "before the end of the file") from None
            if isinstance(rec, dict) and rec.get("kind") == _HEADER_KIND:
                if header is not None:
                    raise CheckpointError(
                        f"corrupt journal {self.path}: duplicate header")
                header = rec
            else:
                records.append(rec)
        return header, records

    def validate_header(self, header: dict | None, **expected) -> None:
        """Check a loaded header against this sweep's identity.

        ``expected`` maps header fields to required values; list/tuple
        values are compared order-sensitively but type-insensitively.
        """
        if header is None:
            raise CheckpointError(
                f"journal {self.path} has no header; was it produced by "
                "an incompatible version?")
        for key, want in expected.items():
            got = header.get(key)
            if isinstance(want, (list, tuple)):
                want, got = list(want), list(got or [])
            if got != want:
                raise CheckpointError(
                    f"journal {self.path} belongs to a different sweep: "
                    f"{key}={got!r}, expected {want!r}")

    def write_header(self, **fields) -> None:
        """Write the identifying header record (fresh journals only)."""
        self._append_line({"kind": _HEADER_KIND, **fields})

    def append(self, record: dict) -> None:
        """Durably append one completed-point record."""
        self._append_line(record)
        metrics.inc("checkpoint.appends")

    def _append_line(self, obj: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(obj)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
