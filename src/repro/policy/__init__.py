"""First-class scheduling policies for the gang-scheduling model.

See :mod:`repro.policy.base` for the protocol and
:mod:`repro.policy.variants` for the shipped policies.
"""

from repro.policy.base import (
    ClassCycleView,
    SchedulingPolicy,
    parse_policy,
    policy_from_dict,
    policy_kinds,
    policy_to_dict,
    register_policy,
    registered_policies,
    resolve_policy,
)
from repro.policy.variants import (
    ROUND_ROBIN,
    MalleableSpeedup,
    PriorityCycle,
    RoundRobin,
    WeightedQuantum,
)

__all__ = [
    "ClassCycleView",
    "SchedulingPolicy",
    "RoundRobin",
    "WeightedQuantum",
    "PriorityCycle",
    "MalleableSpeedup",
    "ROUND_ROBIN",
    "register_policy",
    "registered_policies",
    "policy_kinds",
    "policy_to_dict",
    "policy_from_dict",
    "parse_policy",
    "resolve_policy",
]
