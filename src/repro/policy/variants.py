"""Concrete scheduling policies: the paper's cycle and three departures.

:class:`RoundRobin`
    The paper's policy, unchanged — the default everywhere a policy is
    optional.  Its views alias the config's own distribution objects,
    which keeps "round-robin as a policy" byte-identical to the
    pre-policy code path (same PH objects → same convolutions
    analytically, same sampler cache keys in the simulator).

:class:`WeightedQuantum`
    Per-class weights scale quantum mass: class ``p`` receives a
    quantum with mean ``E[G_p] * w_p * L / sum(w)``.  Uniform weights
    reduce exactly to round-robin.

:class:`PriorityCycle`
    Strict-priority ordering with a starvation bound.  PH convolution
    is commutative, so *reordering alone cannot change the analytic
    vacation* — priority must bite through quantum mass.  Rank ``r``
    in the priority order earns a raw share ``max(decay**r, floor)``
    (the floor is the starvation bound: even the lowest class keeps a
    guaranteed slice), normalized so total quantum mass in the cycle
    is conserved.  The turn order itself follows the priority order,
    which the simulator honors when walking the cycle.

:class:`MalleableSpeedup`
    Class ``p``'s jobs run on ``k_p`` processors at rate
    ``s(k) = k**sigma`` (Berg et al.'s power-law speedup).  This moves
    both levers the rigid policies cannot: capacity becomes
    ``c_p = P // k_p`` and effective service is rescaled by
    ``s(g_p) / s(k_p)`` relative to the config's baseline partition
    size ``g_p``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.policy.base import (
    ClassCycleView,
    SchedulingPolicy,
    register_policy,
)

__all__ = [
    "RoundRobin",
    "WeightedQuantum",
    "PriorityCycle",
    "MalleableSpeedup",
    "ROUND_ROBIN",
]


def _floats(value, name: str) -> tuple[float, ...]:
    if isinstance(value, str):
        value = value.split("/")
    try:
        return tuple(float(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a list of numbers: {value!r}") from exc


def _ints(value, name: str) -> tuple[int, ...]:
    if isinstance(value, str):
        value = value.split("/")
    try:
        out = tuple(int(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a list of integers: {value!r}") from exc
    return out


def _scaled(dist, factor: float):
    """Rescale a PH distribution's mean by ``factor`` (1.0 → same object)."""
    if factor == 1.0:
        return dist
    return dist.rescaled(dist.mean * factor)


@register_policy
@dataclass(frozen=True)
class RoundRobin(SchedulingPolicy):
    """The paper's round-robin timeplexing cycle (the default policy)."""

    kind = "round-robin"

    @property
    def is_default(self) -> bool:
        return True

    def views(self, config) -> tuple[ClassCycleView, ...]:
        return tuple(
            ClassCycleView(
                index=p,
                name=cls.name,
                partitions=config.partitions(p),
                job_processors=cls.partition_size,
                arrival=cls.arrival,
                service=cls.service,
                quantum=cls.quantum,
                overhead=cls.overhead,
            )
            for p, cls in enumerate(config.classes)
        )


@register_policy
@dataclass(frozen=True)
class WeightedQuantum(SchedulingPolicy):
    """Per-class weights scale quantum mass within the cycle."""

    weights: tuple[float, ...]

    kind = "weighted"
    primary_param = "weights"

    def params(self) -> dict:
        return {"weights": list(self.weights)}

    @classmethod
    def _coerce_params(cls, params: dict) -> dict:
        params = dict(params)
        if "weights" in params:
            params["weights"] = _floats(params["weights"], "weights")
        return params

    def validate(self, config) -> None:
        if len(self.weights) != config.num_classes:
            raise ValidationError(
                f"weighted policy has {len(self.weights)} weights for "
                f"{config.num_classes} classes")
        if any(w <= 0 for w in self.weights):
            raise ValidationError(f"weights must be positive: {self.weights}")

    def _scales(self, config) -> tuple[float, ...]:
        total = sum(self.weights)
        length = len(self.weights)
        return tuple(w * length / total for w in self.weights)

    def views(self, config) -> tuple[ClassCycleView, ...]:
        self.validate(config)
        scales = self._scales(config)
        return tuple(
            ClassCycleView(
                index=p,
                name=cls.name,
                partitions=config.partitions(p),
                job_processors=cls.partition_size,
                arrival=cls.arrival,
                service=cls.service,
                quantum=_scaled(cls.quantum, scales[p]),
                overhead=cls.overhead,
            )
            for p, cls in enumerate(config.classes)
        )


@register_policy
@dataclass(frozen=True)
class PriorityCycle(SchedulingPolicy):
    """Strict-priority cycle with a starvation floor.

    ``order[0]`` is the highest-priority class; rank ``r`` earns raw
    quantum share ``max(decay**r, floor)``, normalized to conserve
    total quantum mass.  ``floor`` is the starvation bound — with
    ``floor > 0`` every class keeps a guaranteed slice of the cycle.
    """

    order: tuple[int, ...]
    decay: float = 0.5
    floor: float = 0.05

    kind = "priority"
    primary_param = "order"

    def params(self) -> dict:
        return {"order": list(self.order),
                "decay": self.decay,
                "floor": self.floor}

    @classmethod
    def _coerce_params(cls, params: dict) -> dict:
        params = dict(params)
        if "order" in params:
            params["order"] = _ints(params["order"], "order")
        for key in ("decay", "floor"):
            if key in params:
                params[key] = float(params[key])
        return params

    def validate(self, config) -> None:
        if sorted(self.order) != list(range(config.num_classes)):
            raise ValidationError(
                f"priority order {self.order} is not a permutation of "
                f"0..{config.num_classes - 1}")
        if not 0.0 < self.decay <= 1.0:
            raise ValidationError(f"decay must be in (0, 1]: {self.decay}")
        if not 0.0 <= self.floor <= 1.0:
            raise ValidationError(f"floor must be in [0, 1]: {self.floor}")

    def turn_order(self, config) -> tuple[int, ...]:
        return self.order

    def _scales(self, config) -> dict[int, float]:
        raw = {p: max(self.decay ** rank, self.floor)
               for rank, p in enumerate(self.order)}
        total = sum(raw.values())
        length = len(self.order)
        return {p: r * length / total for p, r in raw.items()}

    def views(self, config) -> tuple[ClassCycleView, ...]:
        self.validate(config)
        scales = self._scales(config)
        return tuple(
            ClassCycleView(
                index=p,
                name=cls.name,
                partitions=config.partitions(p),
                job_processors=cls.partition_size,
                arrival=cls.arrival,
                service=cls.service,
                quantum=_scaled(cls.quantum, scales[p]),
                overhead=cls.overhead,
            )
            for p, cls in enumerate(config.classes)
        )


@register_policy
@dataclass(frozen=True)
class MalleableSpeedup(SchedulingPolicy):
    """Malleable classes: ``k_p`` processors per job at rate ``k**sigma``."""

    processors: tuple[int, ...]
    sigma: float = 0.7

    kind = "malleable"
    primary_param = "processors"

    def params(self) -> dict:
        return {"processors": list(self.processors), "sigma": self.sigma}

    @classmethod
    def _coerce_params(cls, params: dict) -> dict:
        params = dict(params)
        if "procs" in params:
            params["processors"] = params.pop("procs")
        if "processors" in params:
            params["processors"] = _ints(params["processors"], "processors")
        if "sigma" in params:
            params["sigma"] = float(params["sigma"])
        return params

    def speedup(self, k: int) -> float:
        return float(k) ** self.sigma

    def validate(self, config) -> None:
        if len(self.processors) != config.num_classes:
            raise ValidationError(
                f"malleable policy sizes {len(self.processors)} classes, "
                f"config has {config.num_classes}")
        if not 0.0 < self.sigma <= 1.0:
            raise ValidationError(f"sigma must be in (0, 1]: {self.sigma}")
        for p, k in enumerate(self.processors):
            if k < 1:
                raise ValidationError(f"class {p}: k must be >= 1, got {k}")
            if config.processors % k != 0:
                raise ValidationError(
                    f"class {p}: k={k} does not divide "
                    f"P={config.processors} processors")

    def views(self, config) -> tuple[ClassCycleView, ...]:
        self.validate(config)
        out = []
        for p, cls in enumerate(config.classes):
            k = self.processors[p]
            # Service in the config is calibrated for the rigid partition
            # size g_p; running on k processors instead rescales it by
            # s(g_p) / s(k).
            factor = self.speedup(cls.partition_size) / self.speedup(k)
            out.append(ClassCycleView(
                index=p,
                name=cls.name,
                partitions=config.processors // k,
                job_processors=k,
                arrival=cls.arrival,
                service=_scaled(cls.service, factor),
                quantum=cls.quantum,
                overhead=cls.overhead,
            ))
        return tuple(out)


#: Shared default instance — what ``policy=None`` resolves to.
ROUND_ROBIN = RoundRobin()
