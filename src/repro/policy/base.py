"""The scheduling-policy protocol: who gets the machine, and for how long.

The paper fixes one cycle structure — round-robin timeplexing where
class ``p`` holds all ``P`` processors for a PH quantum ``G_p``, pays a
context-switch overhead ``C_p``, and hands the machine to class
``(p + 1) mod L``.  That structure used to be hard-wired through the
model core (vacation builders, QBD assembly, the simulator).  This
package extracts it behind one protocol:

:class:`SchedulingPolicy`
    Given a :class:`~repro.core.config.SystemConfig`, a policy yields
    each class's *cycle view* (:class:`ClassCycleView`): the quantum
    distribution the class actually receives, its effective service
    distribution, its per-class capacity ``c_p``, and the turn order of
    the cycle.  The vacation builders
    (:func:`repro.core.vacation.heavy_traffic_vacation` /
    :func:`~repro.core.vacation.fixed_point_vacation`) convolve what
    :meth:`SchedulingPolicy.cycle_parts` hands them instead of walking
    the raw config themselves, and the simulator samples from the same
    views — so a new policy automatically gets both an analytic model
    and a simulator, crosscheckable against each other.

The paper's round-robin is the default instance
(:class:`~repro.policy.variants.RoundRobin`); its views return the
config's own distribution objects unchanged, so running "round-robin
as a policy" is byte-identical to the pre-policy code path.

Registry and serialization
--------------------------
Policies register by ``kind`` (:func:`register_policy`); a policy
round-trips through :func:`policy_to_dict` / :func:`policy_from_dict`
(the scenario schema embeds this form), and :func:`parse_policy` turns
CLI spec strings like ``weighted:2/1/1/1`` or
``priority:order=3/2/1/0,decay=0.5`` into instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.phasetype import PhaseType

__all__ = [
    "ClassCycleView",
    "SchedulingPolicy",
    "register_policy",
    "policy_kinds",
    "policy_to_dict",
    "policy_from_dict",
    "parse_policy",
    "resolve_policy",
]


@dataclass(frozen=True)
class ClassCycleView:
    """One class's slice of the timeplexing cycle, as a policy grants it.

    This is the *only* shape the model core and the simulator consume:
    QBD assembly uses ``partitions``/``arrival``/``service``/
    ``quantum``, the vacation convolution uses ``quantum``/
    ``overhead``, and the simulator samples all four.  For the default
    round-robin policy every field aliases the corresponding
    :class:`~repro.core.config.ClassConfig` object unchanged.
    """

    #: Class index ``p``.
    index: int
    #: Display name (the config's class name).
    name: str
    #: Effective capacity ``c_p``: jobs of this class served in
    #: parallel during its turn.
    partitions: int
    #: Processors granted to one job of this class during its turn
    #: (``g(p)`` for rigid policies, ``k_p`` for malleable ones).
    job_processors: int
    #: Interarrival distribution ``A_p`` (policies never reshape it).
    arrival: PhaseType
    #: Effective service distribution (rescaled by malleable speedups).
    service: PhaseType
    #: Effective quantum distribution (rescaled by weights/priorities).
    quantum: PhaseType
    #: Context-switch overhead ``C_p`` paid after this class's turn.
    overhead: PhaseType


class SchedulingPolicy:
    """Base of every scheduling policy.

    Subclasses are frozen dataclasses (hashable, picklable — they ride
    inside :class:`~repro.core.fixed_point.FixedPointOptions` and
    travel to sweep worker processes) and override :meth:`views`
    and/or :meth:`turn_order`; everything else derives from those.
    """

    #: Registry key; subclasses must override.
    kind: str = ""

    # -- the protocol ---------------------------------------------------

    def views(self, config) -> tuple[ClassCycleView, ...]:
        """Every class's cycle view under this policy."""
        raise NotImplementedError

    def turn_order(self, config) -> tuple[int, ...]:
        """Class indices in the order the cycle visits them."""
        return tuple(range(config.num_classes))

    def params(self) -> dict:
        """JSON-able parameters (the ``kind`` is added separately)."""
        return {}

    def validate(self, config) -> None:
        """Raise :class:`~repro.errors.ValidationError` on a mismatch.

        Called from :meth:`views`; policies with per-class parameters
        check their arity against ``config.num_classes`` here.
        """

    @classmethod
    def _coerce_params(cls, params: dict) -> dict:
        """Normalize JSON/CLI parameter values before ``cls(**...)``.

        Subclasses coerce lists to tuples and strings like ``2/1/1/1``
        to numeric tuples so the same path serves both
        :func:`policy_from_dict` and :func:`parse_policy`.
        """
        return dict(params)

    # -- derived helpers ------------------------------------------------

    @property
    def is_default(self) -> bool:
        """True only for parameterless round-robin (the paper's cycle)."""
        return False

    def view(self, config, p: int) -> ClassCycleView:
        return self.views(config)[p]

    def successor(self, config, p: int) -> int:
        """The class whose turn follows class ``p``'s."""
        order = self.turn_order(config)
        return order[(order.index(p) + 1) % len(order)]

    def cycle_parts(self, config, p: int, *,
                    effective_quanta: dict[int, PhaseType] | None = None,
                    ) -> list[PhaseType]:
        """The PH pieces of class ``p``'s vacation, in cycle order.

        ``C_p`` followed by ``(Q_n, C_n)`` for every other class ``n``
        in turn order — Theorem 4.1's convolution when
        ``effective_quanta`` is ``None`` (each ``Q_n`` is the view's
        full quantum), Theorem 4.3's when it maps each class to its
        effective quantum.  The vacation builders convolve this list
        verbatim; they no longer construct the cycle themselves.
        """
        views = self.views(config)
        order = self.turn_order(config)
        start = order.index(p)
        parts = [views[p].overhead]
        for off in range(1, len(order)):
            n = order[(start + off) % len(order)]
            if effective_quanta is not None:
                parts.append(effective_quanta[n])
            else:
                parts.append(views[n].quantum)
            parts.append(views[n].overhead)
        return parts

    def describe(self) -> str:
        params = self.params()
        if not params:
            return self.kind
        inner = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        return f"{self.kind}({inner})"


# --------------------------------------------------------------------------
# Registry, serialization, CLI parsing
# --------------------------------------------------------------------------

_REGISTRY: dict[str, type[SchedulingPolicy]] = {}


def register_policy(cls: type[SchedulingPolicy]) -> type[SchedulingPolicy]:
    """Class decorator: register a policy under its ``kind``."""
    if not cls.kind:
        raise ValidationError(f"{cls.__name__} must set a non-empty kind")
    if _REGISTRY.get(cls.kind, cls) is not cls:
        raise ValidationError(f"policy kind {cls.kind!r} already registered")
    _REGISTRY[cls.kind] = cls
    return cls


def policy_kinds() -> tuple[str, ...]:
    """Registered policy kinds, in registration order."""
    return tuple(_REGISTRY)


def registered_policies() -> dict[str, type[SchedulingPolicy]]:
    """A copy of the ``kind -> class`` registry (for test sweeps)."""
    return dict(_REGISTRY)


def resolve_policy(policy: SchedulingPolicy | None) -> SchedulingPolicy:
    """``None`` means the paper's round-robin (the default instance)."""
    if policy is None:
        from repro.policy.variants import ROUND_ROBIN
        return ROUND_ROBIN
    if not isinstance(policy, SchedulingPolicy):
        raise ValidationError(
            f"expected a SchedulingPolicy, got {type(policy).__name__}")
    return policy


def policy_to_dict(policy: SchedulingPolicy) -> dict:
    """JSON form: ``{"kind": ..., **params}``."""
    return {"kind": policy.kind, **policy.params()}


def policy_from_dict(data: dict) -> SchedulingPolicy:
    """Rebuild a policy from :func:`policy_to_dict` output.

    Unknown *kinds* are rejected (an old reader must not silently run
    the wrong cycle); unknown *parameters* of a known kind are rejected
    too, for the same reason.
    """
    if not isinstance(data, dict) or "kind" not in data:
        raise ValidationError(f"policy spec must have a 'kind': {data!r}")
    kind = str(data["kind"])
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise ValidationError(
            f"unknown scheduling policy kind {kind!r}; "
            f"known: {list(_REGISTRY)}")
    params = {k: v for k, v in data.items() if k != "kind"}
    try:
        return cls(**cls._coerce_params(params))
    except TypeError as exc:
        raise ValidationError(
            f"bad parameters for policy {kind!r}: {exc}") from exc


def parse_policy(spec: str) -> SchedulingPolicy:
    """Parse a CLI policy spec string.

    ``KIND[:ARGS]`` where ``ARGS`` is either a bare value for the
    policy's primary parameter or ``key=value`` pairs separated by
    commas; list values use ``/``::

        round-robin
        weighted:2/1/1/1
        priority:order=3/2/1/0,decay=0.5,floor=0.05
        malleable:procs=2/2/4/8,sigma=0.7
    """
    spec = spec.strip()
    kind, _, argstr = spec.partition(":")
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise ValidationError(
            f"unknown scheduling policy {kind!r}; known: {list(_REGISTRY)}")
    params: dict = {}
    if argstr:
        for item in argstr.split(","):
            if "=" in item:
                key, _, value = item.partition("=")
                params[key.strip()] = value.strip()
            else:
                primary = getattr(cls, "primary_param", None)
                if primary is None:
                    raise ValidationError(
                        f"policy {kind!r} takes key=value arguments only, "
                        f"got {item!r}")
                params.setdefault(primary, item.strip())
    try:
        return cls(**cls._coerce_params(params))
    except TypeError as exc:
        raise ValidationError(
            f"bad arguments for policy {kind!r}: {exc}") from exc
