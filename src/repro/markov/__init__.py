"""Finite Markov chain toolkit.

Provides the classical machinery of Section 2 of the paper:

* :class:`~repro.markov.ctmc.ContinuousTimeMarkovChain` — generator
  validation, irreducibility/ergodicity checks, stationary
  distributions (GTH or direct solve), transient analysis.
* :class:`~repro.markov.dtmc.DiscreteTimeMarkovChain` — the same for
  stochastic matrices.
* :func:`~repro.markov.uniformization.uniformize` — the uniformization
  construction of Section 2.4, mapping a CTMC to an equivalent DTMC
  ``P = Q / q_max + I`` that preserves the stationary vector.
* :mod:`~repro.markov.absorbing` — fundamental-matrix analysis of
  absorbing chains (absorption probabilities, mean absorption times),
  used to extract effective-quantum distributions in Theorem 4.3.
"""

from repro.markov.absorbing import (
    absorption_probabilities,
    expected_time_to_absorption,
    fundamental_matrix,
)
from repro.markov.birthdeath import (
    birth_death_stationary,
    mm1_mean_jobs,
    mmc_erlang_c,
    mmc_mean_jobs,
    mmck_blocking_probability,
)
from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.markov.dtmc import DiscreteTimeMarkovChain
from repro.markov.firstpassage import (
    first_passage_ph,
    hitting_probabilities,
    mean_hitting_times,
)
from repro.markov.uniformization import (
    transient_distribution,
    uniformization_rate,
    uniformize,
)

__all__ = [
    "ContinuousTimeMarkovChain",
    "DiscreteTimeMarkovChain",
    "uniformize",
    "uniformization_rate",
    "transient_distribution",
    "fundamental_matrix",
    "absorption_probabilities",
    "expected_time_to_absorption",
    "birth_death_stationary",
    "mm1_mean_jobs",
    "mmc_mean_jobs",
    "mmc_erlang_c",
    "mmck_blocking_probability",
    "mean_hitting_times",
    "hitting_probabilities",
    "first_passage_ph",
]
