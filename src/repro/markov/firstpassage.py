"""First-passage analysis for finite CTMCs.

Hitting probabilities and mean hitting times onto a target set,
computed through the absorbing-chain machinery (make the target
absorbing, read the fundamental matrix).  Used e.g. to answer "how
long until this class's queue first empties" — the emptying time whose
minimum with the raw quantum *is* the effective quantum of
Theorem 4.3.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_generator

__all__ = ["mean_hitting_times", "hitting_probabilities", "first_passage_ph"]


def _split(Q: np.ndarray, target: Sequence[int]):
    n = Q.shape[0]
    target = sorted(set(int(t) for t in target))
    if not target:
        raise ValidationError("target set must be non-empty")
    if target[0] < 0 or target[-1] >= n:
        raise ValidationError(f"target indices out of range for {n} states")
    others = [i for i in range(n) if i not in set(target)]
    return np.asarray(others, dtype=np.intp), np.asarray(target, dtype=np.intp)


def mean_hitting_times(Q, target: Sequence[int]) -> np.ndarray:
    """Expected time to first reach ``target`` from every state.

    Entries for target states are 0.  States that cannot reach the
    target yield ``inf``.
    """
    Q = check_generator(Q)
    others, tgt = _split(Q, target)
    n = Q.shape[0]
    out = np.zeros(n)
    if others.size == 0:
        return out
    S = Q[np.ix_(others, others)]
    try:
        times = np.linalg.solve(S, -np.ones(others.size))
    except np.linalg.LinAlgError:
        # Singular: some states never reach the target.
        times, *_ = np.linalg.lstsq(S, -np.ones(others.size), rcond=None)
        # Mark genuinely non-reaching states as inf via reachability.
        reach = _reaches(Q, others, set(int(t) for t in tgt))
        times = np.where(reach, times, np.inf)
    out[others] = times
    return out


def _reaches(Q: np.ndarray, others: np.ndarray, target: set[int]) -> np.ndarray:
    """Boolean per non-target state: can it reach the target set?"""
    n = Q.shape[0]
    adj = Q > 0
    # Backward BFS from the target.
    reached = np.zeros(n, dtype=bool)
    frontier = list(target)
    for t in target:
        reached[t] = True
    while frontier:
        j = frontier.pop()
        for i in range(n):
            if adj[i, j] and not reached[i]:
                reached[i] = True
                frontier.append(i)
    return reached[others]


def hitting_probabilities(Q, target: Sequence[int],
                          avoid: Sequence[int]) -> np.ndarray:
    """P(reach ``target`` before ``avoid``), from every state.

    ``target`` and ``avoid`` must be disjoint; both are treated as
    absorbing.
    """
    Q = check_generator(Q)
    tset, aset = set(map(int, target)), set(map(int, avoid))
    if tset & aset:
        raise ValidationError("target and avoid sets must be disjoint")
    n = Q.shape[0]
    out = np.zeros(n)
    for t in tset:
        out[t] = 1.0
    transient = [i for i in range(n) if i not in tset | aset]
    if not transient:
        return out
    tr = np.asarray(transient, dtype=np.intp)
    S = Q[np.ix_(tr, tr)]
    b = Q[np.ix_(tr, np.asarray(sorted(tset), dtype=np.intp))].sum(axis=1)
    probs, *_ = np.linalg.lstsq(S, -b, rcond=None)
    out[tr] = np.clip(probs, 0.0, 1.0)
    return out


def first_passage_ph(Q, target: Sequence[int], start: np.ndarray):
    """The first-passage *time distribution* as a PhaseType.

    Restrict the generator to the non-target states (sub-generator) and
    use the start distribution over them; mass starting inside the
    target becomes an atom at zero.  Requires every non-target state to
    reach the target (otherwise the PH would be defective).
    """
    from repro.phasetype import PhaseType

    Q = check_generator(Q)
    others, tgt = _split(Q, target)
    start = np.asarray(start, dtype=np.float64)
    if start.shape != (Q.shape[0],):
        raise ValidationError(
            f"start must have shape ({Q.shape[0]},), got {start.shape}")
    S = Q[np.ix_(others, others)]
    alpha = start[others]
    return PhaseType(alpha, S)
