"""Discrete-time Markov chains on finite state spaces."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.errors import ConvergenceError, ReducibleChainError
from repro.utils.linalg import solve_stationary_dtmc
from repro.utils.validation import check_probability_vector, check_stochastic

__all__ = ["DiscreteTimeMarkovChain"]


class DiscreteTimeMarkovChain:
    """A finite DTMC defined by its row-stochastic transition matrix ``P``."""

    def __init__(self, P, labels=None):
        self._P = check_stochastic(P)
        n = self._P.shape[0]
        if labels is not None:
            labels = list(labels)
            if len(labels) != n:
                raise ValueError(f"{len(labels)} labels supplied for {n} states")
        self._labels = labels

    @property
    def P(self) -> np.ndarray:
        """Transition probability matrix (read-only view)."""
        v = self._P.view()
        v.flags.writeable = False
        return v

    @property
    def num_states(self) -> int:
        return self._P.shape[0]

    @property
    def labels(self):
        return self._labels

    def __repr__(self) -> str:
        return f"DiscreteTimeMarkovChain(n={self.num_states})"

    def is_irreducible(self) -> bool:
        """Strong connectivity of the positive-probability digraph."""
        if self.num_states <= 1:
            return True
        adj = sp.csr_matrix((self._P > 0).astype(np.int8))
        ncomp, _ = connected_components(adj, directed=True, connection="strong")
        return ncomp == 1

    def is_aperiodic(self) -> bool:
        """Aperiodicity check via gcd of cycle lengths through state 0.

        Sufficient shortcut: any positive diagonal entry makes an
        irreducible chain aperiodic; otherwise compute the period as the
        gcd of (d_in + 1 + d_back) over edges, using BFS distances.
        """
        P = self._P
        if np.any(np.diag(P) > 0):
            return True
        # Compute the period of the (assumed single) communicating class
        # containing state 0 using the standard BFS-labelling trick.
        n = self.num_states
        dist = np.full(n, -1)
        dist[0] = 0
        order = [0]
        head = 0
        while head < len(order):
            i = order[head]
            head += 1
            for j in np.nonzero(P[i] > 0)[0]:
                if dist[j] < 0:
                    dist[j] = dist[i] + 1
                    order.append(int(j))
        g = 0
        for i in range(n):
            if dist[i] < 0:
                continue
            for j in np.nonzero(P[i] > 0)[0]:
                if dist[j] >= 0:
                    g = np.gcd(g, dist[i] + 1 - dist[j])
        return g == 1

    def stationary_distribution(self, *, method: str = "gth") -> np.ndarray:
        """Solve ``pi P = pi, pi e = 1``.

        ``method`` is ``"gth"`` (robust elimination) or ``"power"``
        (power iteration with damping-free convergence check; requires
        aperiodicity).
        """
        if not self.is_irreducible():
            raise ReducibleChainError(
                "stationary distribution requested for a reducible chain"
            )
        if method == "gth":
            return solve_stationary_dtmc(self._P)
        if method == "power":
            return self._power_iteration()
        raise ValueError(f"unknown method {method!r}")

    def _power_iteration(self, *, tol: float = 1e-13, max_iter: int = 200_000) -> np.ndarray:
        pi = np.full(self.num_states, 1.0 / self.num_states)
        delta = float("inf")
        for it in range(max_iter):
            nxt = pi @ self._P
            delta = float(np.max(np.abs(nxt - pi)))
            pi = nxt
            if delta < tol:
                return pi / pi.sum()
        raise ConvergenceError(
            "power iteration did not converge (is the chain periodic?)",
            iterations=max_iter, residual=delta,
        )

    def step_distribution(self, p0, n: int = 1) -> np.ndarray:
        """Distribution after ``n`` steps from initial distribution ``p0``."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        p = check_probability_vector(np.asarray(p0, dtype=np.float64), name="p0")
        for _ in range(n):
            p = p @ self._P
        return p
