"""Uniformization (randomization) of continuous-time chains.

Section 2.4 of the paper: given a CTMC with generator ``Q`` and
``q_max >= max_i(-Q[i,i])`` finite, the discrete-time chain with
transition matrix ``P = Q / q_max + I`` has the *same stationary
vector* as the CTMC (substitute ``P`` into ``pi P = pi`` and multiply
through by ``q_max``).  The paper uses this to define the steady-state
quantum-start vector ``xi_p`` in Theorem 4.3; we additionally use it
for transient analysis, where the time-``t`` distribution is a Poisson
mixture of DTMC step distributions — numerically robust because every
term is a proper probability vector.

``Q`` may be dense or CSR throughout: uniformizing keeps the
representation (a sparse generator yields a sparse ``P``), and the
transient series is a sequence of vector-matrix products, which is
exactly where CSR pays — ``O(nnz)`` per Poisson term instead of
``O(n^2)``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp
from scipy import stats

from repro.errors import ValidationError
from repro.kernels import diagonal, is_sparse, row_sums, to_csr
from repro.utils.validation import check_generator

__all__ = ["uniformization_rate", "uniformize", "transient_distribution"]


def uniformization_rate(Q, *, slack: float = 1.0) -> float:
    """A valid uniformization constant ``q_max`` for generator ``Q``.

    ``slack > 1`` inflates the rate, which adds self-loops to the
    uniformized chain; this is sometimes useful to guarantee
    aperiodicity.  ``slack`` must be ``>= 1``.
    """
    if slack < 1.0:
        raise ValidationError(f"slack must be >= 1, got {slack}")
    diag = -diagonal(Q)
    q = float(np.max(diag)) if diag.size else 0.0
    if q <= 0.0:
        # All states absorbing; any positive rate works.
        return 1.0
    return q * slack


def uniformize(Q, *, q_max: float | None = None,
               validate: bool = True):
    """Return the uniformized DTMC ``P = Q / q_max + I`` and the rate used.

    Parameters
    ----------
    Q:
        CTMC generator, dense or CSR; ``P`` comes back in the same
        representation.
    q_max:
        Uniformization constant; defaults to the maximal exit rate.
        Must be at least that rate or the result would have negative
        diagonal entries.
    validate:
        Whether to validate ``Q`` as a generator first (skip inside
        hot loops that already guarantee it).  Sparse generators skip
        the structural check — they only arise internally, from
        builders that guarantee the generator property.
    """
    if is_sparse(Q):
        Q = to_csr(Q)
    else:
        Q = check_generator(Q) if validate else np.asarray(Q, dtype=np.float64)
    max_exit = float(np.max(-diagonal(Q))) if Q.shape[0] else 0.0
    rate = uniformization_rate(Q) if q_max is None else float(q_max)
    if rate < max_exit - 1e-12 * max(1.0, rate):
        raise ValidationError(
            f"q_max={rate} is below the maximal exit rate {max_exit}"
        )
    if is_sparse(Q):
        P = _sp.csr_array(Q / rate + _sp.eye_array(Q.shape[0], format="csr"))
        # Round-off can leave tiny negatives on the diagonal.
        np.clip(P.data, 0.0, None, out=P.data)
        rows = row_sums(P)
        inv = np.where(rows > 0, 1.0 / rows, 1.0)
        # Row renormalization = left diagonal scaling.
        P = _sp.csr_array(_sp.diags_array(inv) @ P)
        return P, rate
    P = Q / rate + np.eye(Q.shape[0])
    np.clip(P, 0.0, None, out=P)
    rows = P.sum(axis=1, keepdims=True)
    # Rows of a generator sum to 0, so rows of P sum to 1 up to round-off;
    # renormalize so downstream stochastic checks pass exactly.
    np.divide(P, rows, out=P, where=rows > 0)
    return P, rate


def transient_distribution(Q, p0: np.ndarray, t: float,
                           *, tol: float = 1e-12) -> np.ndarray:
    """Distribution at time ``t``: ``p0 expm(Q t)`` via Poisson-weighted steps.

    Truncates the Poisson(``q_max * t``) series at mass ``1 - tol``
    (two-sided), guaranteeing an absolute error below ``tol`` in each
    component.  ``Q`` may be dense or CSR; each series term is one
    vector-matrix product either way.
    """
    if t < 0:
        raise ValidationError(f"t must be non-negative, got {t}")
    p0 = np.asarray(p0, dtype=np.float64)
    if t == 0.0:
        return p0.copy()
    P, rate = uniformize(Q)
    lam = rate * t
    # Two-sided truncation of the Poisson weights.
    lo, hi = stats.poisson.interval(1.0 - tol, lam)
    lo, hi = int(max(lo, 0)), int(hi) + 1
    weights = stats.poisson.pmf(np.arange(0, hi + 1), lam)
    out = np.zeros_like(p0)
    v = p0.copy()
    for k in range(0, hi + 1):
        if k >= lo:
            out += weights[k] * v
        v = np.asarray(v @ P)
    # Renormalize the truncated series.
    s = out.sum()
    if s > 0:
        out /= s
    return out
