"""Absorbing-chain analysis.

Given a CTMC partitioned into transient states ``T`` and absorbing
states ``A``, the generator has the block form::

    Q = [ S   B ]      S: T x T  (sub-generator)
        [ 0   0 ]      B: T x A  (absorption rates)

The *fundamental matrix* ``N = (-S)^{-1}`` collects expected sojourn
times; ``N B`` gives absorption probabilities and ``N e`` mean times to
absorption.  Theorem 4.3 of the paper builds exactly such a chain to
define the effective-quantum distribution: the class-``p`` "in service"
states are made transient and every exit to the waiting states is
redirected to a single absorbing state ``(0, 0)``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_subgenerator

__all__ = [
    "fundamental_matrix",
    "absorption_probabilities",
    "expected_time_to_absorption",
]


def fundamental_matrix(S: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """``N = (-S)^{-1}``: expected time spent in each transient state.

    ``N[i, j]`` is the expected total time spent in transient state
    ``j`` before absorption, starting from transient state ``i``.
    """
    if validate:
        S = check_subgenerator(S)
    else:
        S = np.asarray(S, dtype=np.float64)
    return np.linalg.inv(-S)


def absorption_probabilities(S: np.ndarray, B: np.ndarray,
                             *, validate: bool = True) -> np.ndarray:
    """Probability of ending in each absorbing state: ``(-S)^{-1} B``.

    Rows index the starting transient state, columns the absorbing
    state; each row sums to 1 for a proper absorbing chain.
    """
    N = fundamental_matrix(S, validate=validate)
    B = np.asarray(B, dtype=np.float64)
    if B.ndim == 1:
        B = B[:, None]
    if B.shape[0] != N.shape[0]:
        raise ValueError(
            f"B has {B.shape[0]} rows but there are {N.shape[0]} transient states"
        )
    return N @ B


def expected_time_to_absorption(S: np.ndarray, start: np.ndarray | None = None,
                                *, validate: bool = True) -> float | np.ndarray:
    """Mean time to absorption.

    With ``start=None`` returns the vector of means per starting
    transient state (``N e``); with an initial distribution returns the
    scalar ``start N e`` — the mean of the PH distribution
    ``PH(start, S)``.
    """
    N = fundamental_matrix(S, validate=validate)
    times = N.sum(axis=1)
    if start is None:
        return times
    start = np.asarray(start, dtype=np.float64)
    if start.shape != (N.shape[0],):
        raise ValueError(
            f"start must have shape ({N.shape[0]},), got {start.shape}"
        )
    return float(start @ times)
