"""Continuous-time Markov chains on finite state spaces."""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.errors import ReducibleChainError
from repro.utils.linalg import stationary_from_generator
from repro.utils.validation import check_generator, check_probability_vector

__all__ = ["ContinuousTimeMarkovChain"]


class ContinuousTimeMarkovChain:
    """A finite CTMC defined by its infinitesimal generator ``Q``.

    Implements the Section 2.2 machinery of the paper: validation of
    the generator, irreducibility (strong connectivity of the positive-
    rate digraph), and the stationary distribution from the global
    balance equations ``pi Q = 0``, ``pi e = 1`` (Theorem 2.4).

    Parameters
    ----------
    Q:
        Square generator matrix (validated on construction).
    labels:
        Optional hashable labels for the states, used by
        :meth:`state_index` and in reports.
    """

    def __init__(self, Q, labels=None):
        self._Q = check_generator(Q)
        n = self._Q.shape[0]
        if labels is not None:
            labels = list(labels)
            if len(labels) != n:
                raise ValueError(
                    f"{len(labels)} labels supplied for {n} states"
                )
        self._labels = labels

    @property
    def Q(self) -> np.ndarray:
        """The generator matrix (read-only view)."""
        v = self._Q.view()
        v.flags.writeable = False
        return v

    @property
    def num_states(self) -> int:
        return self._Q.shape[0]

    @property
    def labels(self):
        return self._labels

    def state_index(self, label) -> int:
        """Index of the state with the given label."""
        if self._labels is None:
            raise ValueError("chain was constructed without labels")
        return self._labels.index(label)

    def __repr__(self) -> str:
        return f"ContinuousTimeMarkovChain(n={self.num_states})"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @cached_property
    def max_exit_rate(self) -> float:
        """``q_max = max_i (-Q[i, i])``, the uniformization rate."""
        return float(np.max(-np.diag(self._Q))) if self.num_states else 0.0

    def is_irreducible(self) -> bool:
        """Whether the positive-rate digraph is strongly connected.

        For a finite CTMC, irreducibility implies ergodicity (positive
        recurrence of all states), so this is the full Theorem 2.4
        hypothesis check.
        """
        n = self.num_states
        if n <= 1:
            return True
        adj = sp.csr_matrix((self._Q > 0).astype(np.int8))
        ncomp, _ = connected_components(adj, directed=True, connection="strong")
        return ncomp == 1

    def communicating_classes(self) -> list[list[int]]:
        """Strongly connected components of the transition digraph."""
        n = self.num_states
        adj = sp.csr_matrix((self._Q > 0).astype(np.int8))
        ncomp, labels = connected_components(adj, directed=True, connection="strong")
        out: list[list[int]] = [[] for _ in range(ncomp)]
        for i, c in enumerate(labels):
            out[c].append(i)
        return out

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------

    def stationary_distribution(self, *, method: str = "gth") -> np.ndarray:
        """Solve ``pi Q = 0, pi e = 1`` for the unique stationary vector.

        Raises :class:`~repro.errors.ReducibleChainError` if the chain
        is reducible.
        """
        if not self.is_irreducible():
            raise ReducibleChainError(
                "stationary distribution requested for a reducible chain; "
                "restrict to a recurrent class first"
            )
        return stationary_from_generator(self._Q, method=method)

    def expected_rewards(self, rewards, *, method: str = "gth") -> float:
        """Long-run average of a per-state reward vector."""
        rewards = np.asarray(rewards, dtype=np.float64)
        if rewards.shape != (self.num_states,):
            raise ValueError(
                f"rewards must have shape ({self.num_states},), got {rewards.shape}"
            )
        return float(self.stationary_distribution(method=method) @ rewards)

    # ------------------------------------------------------------------
    # Transient behaviour
    # ------------------------------------------------------------------

    def transient_distribution(self, p0, t: float, *, tol: float = 1e-12) -> np.ndarray:
        """State distribution at time ``t`` starting from ``p0``.

        Computed by uniformization (Poisson-weighted powers of the
        uniformized DTMC), which is numerically safe for stiff
        generators — see :mod:`repro.markov.uniformization`.
        """
        from repro.markov.uniformization import transient_distribution

        p0 = check_probability_vector(np.asarray(p0, dtype=np.float64), name="p0")
        return transient_distribution(self._Q, p0, t, tol=tol)

    def sample_path(self, rng: np.random.Generator, p0, horizon: float):
        """Simulate one trajectory up to ``horizon``.

        Returns ``(times, states)`` where ``times[0] = 0`` and
        ``states[k]`` is occupied on ``[times[k], times[k+1])``.
        Mainly used by tests to cross-check analytic quantities.
        """
        p0 = check_probability_vector(np.asarray(p0, dtype=np.float64), name="p0")
        state = int(rng.choice(self.num_states, p=p0))
        t = 0.0
        times = [0.0]
        states = [state]
        while True:
            rate = -self._Q[state, state]
            if rate <= 0:
                break  # absorbing state
            t += rng.exponential(1.0 / rate)
            if t >= horizon:
                break
            row = np.clip(self._Q[state].copy(), 0.0, None)
            row[state] = 0.0
            state = int(rng.choice(self.num_states, p=row / row.sum()))
            times.append(t)
            states.append(state)
        return np.asarray(times), np.asarray(states)
