"""Birth-death chains in closed form.

Classical results used as independent oracles by the test suite (the
gang model must collapse to these in its limit cases) and as a
convenience for users: stationary distributions and moments of
birth-death processes, including the M/M/1, M/M/c and M/M/c/K queues.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.errors import UnstableSystemError, ValidationError

__all__ = [
    "birth_death_stationary",
    "mm1_mean_jobs",
    "mmc_mean_jobs",
    "mmc_erlang_c",
    "mmck_blocking_probability",
]


def birth_death_stationary(birth: Callable[[int], float],
                           death: Callable[[int], float],
                           levels: int) -> np.ndarray:
    """Stationary vector of a truncated birth-death chain.

    ``pi_{n+1} / pi_n = birth(n) / death(n+1)`` — the detailed-balance
    product form.  ``levels`` states ``0..levels-1`` are computed and
    normalized; for an infinite stable chain choose ``levels`` large
    enough that the tail mass is negligible.
    """
    if levels < 1:
        raise ValidationError(f"levels must be >= 1, got {levels}")
    weights = np.empty(levels)
    weights[0] = 1.0
    for n in range(levels - 1):
        b = birth(n)
        d = death(n + 1)
        if d <= 0:
            raise ValidationError(f"death rate at level {n + 1} must be positive")
        weights[n + 1] = weights[n] * b / d
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        raise UnstableSystemError("birth-death weights diverge: unstable chain")
    return weights / total


def mm1_mean_jobs(lam: float, mu: float) -> float:
    """M/M/1 mean number in system: ``rho / (1 - rho)``."""
    rho = lam / mu
    if rho >= 1:
        raise UnstableSystemError(f"M/M/1 unstable: rho={rho}", drift=lam - mu)
    return rho / (1 - rho)


def mmc_erlang_c(lam: float, mu: float, c: int) -> float:
    """Erlang-C: probability an M/M/c arrival must wait."""
    rho = lam / (c * mu)
    if rho >= 1:
        raise UnstableSystemError(f"M/M/{c} unstable: rho={rho}",
                                  drift=lam - c * mu)
    a = lam / mu
    p0_inv = sum(a ** k / math.factorial(k) for k in range(c)) \
        + a ** c / (math.factorial(c) * (1 - rho))
    return (a ** c / (math.factorial(c) * (1 - rho))) / p0_inv


def mmc_mean_jobs(lam: float, mu: float, c: int) -> float:
    """M/M/c mean number in system: ``C(c, a) rho / (1-rho) + a``."""
    rho = lam / (c * mu)
    return mmc_erlang_c(lam, mu, c) * rho / (1 - rho) + lam / mu


def mmck_blocking_probability(lam: float, mu: float, c: int, K: int) -> float:
    """M/M/c/K blocking probability (Erlang loss generalization).

    ``K >= c`` is the total capacity including those in service.
    """
    if K < c:
        raise ValidationError(f"capacity K={K} must be >= servers c={c}")
    pi = birth_death_stationary(
        birth=lambda n: lam if n < K else 0.0,
        death=lambda n: min(n, c) * mu,
        levels=K + 1,
    )
    return float(pi[K])
