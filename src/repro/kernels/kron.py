"""Kronecker products: sparse assembly and matrix-free application.

Two sparsity regimes matter for the gang chains:

* **assembly** — the QBD blocks are sums of two-factor Kronecker
  products (service phase x vacation phase).  :func:`kron2` builds
  them, dispatching to ``scipy.sparse.kron`` when the caller wants CSR
  output, with the same scalar shortcuts as the dense fast path.

* **application** — the Kronecker *sum* ``kron(A, I) + kron(I, B)``
  never needs materializing: by the row-major vec identity
  ``kron(A, B) vec(X) = vec(A X B^T)`` its action on ``vec(X)`` is
  ``vec(A X + X B^T)`` — two GEMMs instead of an ``(nm)^2`` operand.
  :class:`KronSumOperator` wraps that as a scipy ``LinearOperator``,
  and :func:`solve_sylvester` uses the same identity to solve the
  generalized Sylvester equation of the Newton step in
  :func:`repro.qbd.rmatrix.refine_R` by GMRES, replacing the dense
  ``d^2 x d^2`` Kronecker linearization for large phase dimensions.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp
from scipy.sparse import linalg as _spla

from repro.obs import metrics

__all__ = ["kron2", "KronSumOperator", "solve_sylvester"]


def kron2(a, b, *, sparse: bool = False):
    """``kron(a, b)`` with scalar shortcuts and optional CSR output.

    Mirrors the dense fast path in :mod:`repro.pipeline.assembly`: a
    ``1x1`` factor is a plain scaling, so no Kronecker expansion is
    performed at all.  With ``sparse=True`` the expanded product comes
    back as ``csr_array`` built by ``scipy.sparse.kron`` without a
    dense intermediate (either factor may already be sparse).
    """
    if a.shape == (1, 1):
        s = a[0, 0] if not _sp.issparse(a) else a.toarray()[0, 0]
        out = b * s
        if sparse and not _sp.issparse(out):
            return _sp.csr_array(out)
        return out
    if b.shape == (1, 1):
        s = b[0, 0] if not _sp.issparse(b) else b.toarray()[0, 0]
        out = a * s
        if sparse and not _sp.issparse(out):
            return _sp.csr_array(out)
        return out
    if sparse or _sp.issparse(a) or _sp.issparse(b):
        return _sp.csr_array(_sp.kron(_sp.csr_array(a), _sp.csr_array(b),
                                      format="csr"))
    return np.kron(a, b)


class KronSumOperator(_spla.LinearOperator):
    """Matrix-free ``kron(A, I_m) + kron(I_n, B)`` on row-major vecs.

    ``A`` is ``n x n``, ``B`` is ``m x m``; the operator has shape
    ``(nm, nm)`` and acts on ``vec(X)`` (row-major, ``X`` being
    ``n x m``) as ``vec(A X + X B^T)``.  Either factor may be dense or
    sparse; the apply is two matrix products either way.
    """

    def __init__(self, A, B):
        self.A = A
        self.B = B
        self.n = A.shape[0]
        self.m = B.shape[0]
        super().__init__(dtype=np.float64,
                         shape=(self.n * self.m, self.n * self.m))

    def _matvec(self, x):
        X = np.asarray(x, dtype=np.float64).reshape(self.n, self.m)
        return (self.A @ X + (self.B @ X.T).T).ravel()

    def _rmatvec(self, x):
        # Transpose action: kron(A, I)^T + kron(I, B)^T on vec(X) is
        # vec(A^T X + X B).
        X = np.asarray(x, dtype=np.float64).reshape(self.n, self.m)
        return (self.A.T @ X + X @ self.B).ravel()

    def toarray(self) -> np.ndarray:
        """Materialized operator — for tests and tiny operands only."""
        from repro.kernels.sparse import to_dense

        A = to_dense(self.A)
        B = to_dense(self.B)
        return (np.kron(A, np.eye(self.m)) + np.kron(np.eye(self.n), B))


def solve_sylvester(R: np.ndarray, M1: np.ndarray, A2: np.ndarray,
                    F: np.ndarray, *, tol: float = 1e-12,
                    maxiter: int | None = None) -> np.ndarray | None:
    """Solve ``H M1 + R H A2 = -F`` matrix-free, or ``None`` on failure.

    This is the generalized Sylvester equation of one Newton step on
    the quadratic residual ``F(R) = A0 + R A1 + R^2 A2`` (with
    ``M1 = A1 + R A2``).  In row-major vec form the coefficient matrix
    is ``kron(I, M1^T) + kron(R, A2^T)``, whose action on ``vec(H)``
    is ``vec(H M1 + R H A2)`` — two ``d x d`` GEMMs.  GMRES over that
    ``LinearOperator`` replaces the dense ``d^2 x d^2`` factorization,
    taking the Newton step from ``O(d^6)`` to ``O(k d^3)``.
    """
    d = M1.shape[0]

    def _apply(x):
        H = x.reshape(d, d)
        return (H @ M1 + R @ (H @ A2)).ravel()

    op = _spla.LinearOperator((d * d, d * d), matvec=_apply,
                              dtype=np.float64)
    rhs = -np.asarray(F, dtype=np.float64).ravel()
    rhs_norm = float(np.linalg.norm(rhs))
    if rhs_norm == 0.0:
        return np.zeros((d, d))
    rtol = max(min(tol, 1e-8), 1e-12)
    callback = None
    if metrics.enabled():
        # Count matvecs (≈ inner GMRES iterations); the callback is
        # only installed when the registry is armed, so the disabled
        # path hands scipy a plain None.
        iters = [0]

        def callback(_):
            iters[0] += 1

    h, info = _spla.gmres(op, rhs, rtol=rtol, atol=0.0,
                          maxiter=maxiter if maxiter is not None else 50,
                          restart=min(d * d, 100),
                          callback=callback, callback_type="pr_norm")
    if callback is not None:
        metrics.inc("gmres.solves", converged=info == 0)
        metrics.observe("gmres.iterations", iters[0])
    if info != 0 or not np.all(np.isfinite(h)):
        return None
    return h.reshape(d, d)
