"""CSR helpers shared by the sparse kernels.

The repo's matrices live in two representations — dense ``ndarray``
(the reference kernels, and every block small enough that CSR indices
would outweigh the data) and ``scipy.sparse`` CSR (large boundary
blocks, truncated generators, uniformized chains).  These helpers are
the representation-agnostic seam: each accepts either and returns the
obvious thing, so consumers like the boundary solver and the
effective-quantum extractor can stop caring which one the assembler
produced.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp
from scipy.sparse import linalg as _spla

__all__ = [
    "is_sparse",
    "to_csr",
    "to_dense",
    "density",
    "diagonal",
    "row_sums",
    "sub_dense",
    "block_bytes",
    "Factorization",
    "factorize",
    "ph_moments",
]


def is_sparse(M) -> bool:
    """``True`` for any scipy sparse matrix/array."""
    return _sp.issparse(M)


def to_csr(M) -> "_sp.csr_array":
    """Coerce to ``csr_array`` (cheap when already CSR)."""
    if _sp.issparse(M):
        return _sp.csr_array(M)
    return _sp.csr_array(np.asarray(M, dtype=np.float64))


def to_dense(M) -> np.ndarray:
    """Coerce to a float64 ``ndarray`` (no copy when already one)."""
    if _sp.issparse(M):
        return M.toarray()
    return np.asarray(M, dtype=np.float64)


def density(M) -> float:
    """Fill fraction ``nnz / (rows * cols)`` (0.0 for empty shapes)."""
    rows, cols = M.shape
    cells = rows * cols
    if cells == 0:
        return 0.0
    if _sp.issparse(M):
        return M.nnz / cells
    return float(np.count_nonzero(M)) / cells


def diagonal(M) -> np.ndarray:
    """Main diagonal as a 1-D array, either representation."""
    if _sp.issparse(M):
        return np.asarray(M.diagonal())
    return np.diag(np.asarray(M))


def row_sums(M) -> np.ndarray:
    """Row sums as a 1-D array, either representation."""
    if _sp.issparse(M):
        return np.asarray(M.sum(axis=1)).ravel()
    return np.asarray(M).sum(axis=1)


def sub_dense(M, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Dense submatrix ``M[rows, cols]`` from either representation.

    The consumers (boundary solve, extraction) take small index sets
    out of possibly-large blocks, so the result is always dense.
    """
    if rows.size == 0 or cols.size == 0:
        return np.zeros((rows.size, cols.size))
    if _sp.issparse(M):
        return M[np.ix_(rows, cols)].toarray()
    return M[np.ix_(rows, cols)]


def block_bytes(M) -> tuple[bytes, ...]:
    """Content-identifying bytes of a block, for cache keys.

    Dense blocks hash their shape + raw bytes; CSR blocks hash shape +
    ``(data, indices, indptr)``, which identifies the matrix exactly
    (scipy keeps canonical CSR for matrices built through its
    constructors).
    """
    if _sp.issparse(M):
        csr = M.tocsr()
        return (b"csr", repr(csr.shape).encode(), csr.data.tobytes(),
                csr.indices.tobytes(), csr.indptr.tobytes())
    arr = np.asarray(M)
    return (repr(arr.shape).encode(), arr.tobytes())


class Factorization:
    """LU factorization of a square block, dense or sparse.

    One object, two engines: :func:`scipy.linalg.lu_factor` below the
    sparse threshold, :func:`scipy.sparse.linalg.splu` above it.  Both
    expose ``solve`` (``A x = b``) and ``solve_transposed``
    (``A^T x = b``) for 1-D or 2-D right-hand sides.
    """

    def __init__(self, A, *, backend: str):
        from scipy import linalg as _la

        self.shape = A.shape
        if backend == "sparse":
            self._lu = _spla.splu(_sp.csc_matrix(to_csr(A)))
            self._dense = None
        else:
            self._lu = None
            self._dense = _la.lu_factor(to_dense(A))

    def solve(self, b: np.ndarray) -> np.ndarray:
        from scipy import linalg as _la

        if self._lu is not None:
            return self._lu.solve(np.asarray(b, dtype=np.float64))
        return _la.lu_solve(self._dense, b)

    def solve_transposed(self, b: np.ndarray) -> np.ndarray:
        from scipy import linalg as _la

        if self._lu is not None:
            return self._lu.solve(np.asarray(b, dtype=np.float64),
                                  trans="T")
        return _la.lu_solve(self._dense, b, trans=1)


def factorize(A, *, backend: str | None = None) -> Factorization:
    """Factorize a square block, choosing the engine by size/density."""
    from repro.kernels.backend import select_backend

    chosen = select_backend(backend, A.shape[0], density(A))
    return Factorization(A, backend=chosen)


def ph_moments(alpha: np.ndarray, S, kmax: int, *,
               backend: str | None = None) -> list[float]:
    """Raw moments ``E[X^k] = k! alpha (-S)^{-k} e`` for ``k = 1..kmax``.

    The dense reference (:meth:`repro.phasetype.PhaseType.moment`)
    inverts ``-S`` outright — an ``O(order^3)`` dense inversion that
    dominates the fixed point's ``reduce`` stage once the effective
    quantum's order grows with the truncated chain.  Here one LU
    factorization (sparse ``splu`` when the sub-generator is large and
    sparse — it is block-bidiagonal by construction) serves every
    moment via back-substitutions: ``y_k = (-S)^{-1} y_{k-1}`` with
    ``y_0 = e``, ``m_k = k! alpha y_k``.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    n = alpha.shape[0]
    negS = -to_csr(S) if is_sparse(S) else -to_dense(S)
    lu = factorize(negS, backend=backend)
    y = np.ones(n)
    fact = 1.0
    out: list[float] = []
    for k in range(1, kmax + 1):
        y = lu.solve(y)
        fact *= k
        out.append(float(fact * (alpha @ y)))
    return out
