"""Dense / sparse computational kernels behind the analytic pipeline.

The package splits into:

* :mod:`repro.kernels.backend` — the ``auto`` / ``dense`` / ``sparse``
  mode and the size x density selector every kernel consults;
* :mod:`repro.kernels.sparse` — representation-agnostic block helpers
  (dense ``ndarray`` or CSR) plus LU factorization and PH moments;
* :mod:`repro.kernels.kron` — sparse Kronecker assembly and the
  matrix-free Kronecker-sum / generalized-Sylvester operators;
* :mod:`repro.kernels.boundary` — the block-tridiagonal boundary
  solver replacing the dense all-levels least-squares path;
* :mod:`repro.kernels.batched` — ``(n, m, m)`` stacked twins of the
  R/G solvers, driving many sweep points through one batched-BLAS
  iteration with per-point dropout;
* :mod:`repro.kernels.adaptive` — measured dense/sparse crossover:
  armed per-site winners plus the host+shape-keyed JSON sidecar.

Every kernel here has a dense reference twin elsewhere in the repo;
``backend="dense"`` routes around this package entirely and the
sparse paths fall back to the references on numerical failure.
"""

from repro.kernels.adaptive import (
    CALIBRATION_ENV,
    arm_decisions,
    armed_decision,
    armed_decisions,
    calibrated,
    calibration_key,
    calibration_path,
    load_calibration,
    store_calibration,
)
from repro.kernels.backend import (
    AUTO,
    BACKENDS,
    DENSE,
    SPARSE,
    SPARSE_DENSITY_THRESHOLD,
    SPARSE_MIN_SIZE,
    SPARSE_SIZE_THRESHOLD,
    resolve_backend,
    select_backend,
)
from repro.kernels.batched import (
    batched_boundary_solve,
    batched_drift,
    batched_gth,
    batched_r_from_g,
    batched_refine_R,
    batched_solve_G,
    batched_solve_R,
    stack_blocks,
)
from repro.kernels.boundary import solve_boundary_blocktridiag
from repro.kernels.kron import KronSumOperator, kron2, solve_sylvester
from repro.kernels.sparse import (
    Factorization,
    block_bytes,
    density,
    diagonal,
    factorize,
    is_sparse,
    ph_moments,
    row_sums,
    sub_dense,
    to_csr,
    to_dense,
)

__all__ = [
    "AUTO",
    "BACKENDS",
    "DENSE",
    "SPARSE",
    "SPARSE_DENSITY_THRESHOLD",
    "SPARSE_MIN_SIZE",
    "SPARSE_SIZE_THRESHOLD",
    "resolve_backend",
    "select_backend",
    "CALIBRATION_ENV",
    "arm_decisions",
    "armed_decision",
    "armed_decisions",
    "calibrated",
    "calibration_key",
    "calibration_path",
    "load_calibration",
    "store_calibration",
    "stack_blocks",
    "batched_gth",
    "batched_drift",
    "batched_solve_G",
    "batched_r_from_g",
    "batched_refine_R",
    "batched_solve_R",
    "batched_boundary_solve",
    "solve_boundary_blocktridiag",
    "KronSumOperator",
    "kron2",
    "solve_sylvester",
    "Factorization",
    "block_bytes",
    "density",
    "diagonal",
    "factorize",
    "is_sparse",
    "ph_moments",
    "row_sums",
    "sub_dense",
    "to_csr",
    "to_dense",
]
