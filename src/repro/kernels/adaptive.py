"""Adaptive dense/sparse crossover calibrated from measured timings.

The static size × density thresholds of :mod:`repro.kernels.backend`
encode one machine's crossover; ``BENCH_scaling.json`` shows they are
wrong below ``P ≈ 64`` on others (sparse "speedup" 0.2x at ``P = 8``).
The batched sweep engine (:mod:`repro.workloads.batched`) therefore
*measures* the crossover at runtime: the first two sweep chunks run
with the dense and sparse kernels respectively, their per-site stage
timings are compared, and every later point uses the winner.

This module holds the two pieces that outlive a single sweep:

* **Armed decisions.**  ``arm_decisions({"boundary": "dense", ...})``
  installs per-site winners that :func:`repro.kernels.select_backend`
  consults in ``auto`` mode (forced ``dense``/``sparse`` modes and the
  tiny-operand guard are unaffected).  Arming is process-global and
  scoped with :func:`calibrated` so nested sweeps restore the caller's
  state.
* **A JSON sidecar** keyed by host + model shape, so repeated CLI or
  service runs skip re-timing.  The sidecar is best-effort: a missing,
  stale, or corrupt file silently falls back to fresh calibration —
  never fatal — and writes are atomic (tempfile + rename).

Calibration outcomes are exposed through :mod:`repro.obs.metrics` as
``backend.calibration{site, winner, source}`` counters and
``backend.calibration.seconds{site, backend}`` gauges.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import socket
import tempfile

from repro.obs import metrics

__all__ = [
    "CALIBRATION_ENV",
    "arm_decisions",
    "armed_decision",
    "armed_decisions",
    "calibrated",
    "calibration_key",
    "calibration_path",
    "load_calibration",
    "store_calibration",
]

#: Environment variable overriding the sidecar location.
CALIBRATION_ENV = "REPRO_GANG_CALIBRATION"

#: Calibratable sites (the ``site=`` labels of ``select_backend``
#: call sites with both a dense and a sparse implementation).
SITES = ("boundary", "rsolve", "assembly", "reduce")

_DECISIONS: dict[str, str] = {}


def arm_decisions(decisions: dict[str, str] | None) -> None:
    """Install (or clear, with ``None``/empty) per-site winners."""
    _DECISIONS.clear()
    for site, choice in (decisions or {}).items():
        if choice in ("dense", "sparse"):
            _DECISIONS[site] = choice


def armed_decisions() -> dict[str, str]:
    """The currently armed per-site winners (a copy)."""
    return dict(_DECISIONS)


def armed_decision(site: str | None) -> str | None:
    """The armed winner for ``site``, if any (fast path for the hook)."""
    if site is None or not _DECISIONS:
        return None
    return _DECISIONS.get(site)


@contextlib.contextmanager
def calibrated(decisions: dict[str, str] | None):
    """Scope armed decisions: restore the previous state on exit."""
    prev = armed_decisions()
    arm_decisions(decisions)
    try:
        yield
    finally:
        arm_decisions(prev)


def calibration_path() -> pathlib.Path:
    """Sidecar location (env override, else ``~/.cache/repro-gang/``)."""
    env = os.environ.get(CALIBRATION_ENV)
    if env:
        return pathlib.Path(env)
    return (pathlib.Path(os.environ.get("XDG_CACHE_HOME",
                                        pathlib.Path.home() / ".cache"))
            / "repro-gang" / "backend-calibration.json")


def calibration_key(shape) -> str:
    """Sidecar key for one (host, model shape) pair.

    ``shape`` is any JSON-ish structure describing the swept system's
    dimensions (processors, per-class orders); the key ties a
    measurement to the hardware *and* the operand sizes it was taken
    on, so a different machine or model re-calibrates.
    """
    host = socket.gethostname() or "unknown-host"
    return f"{host}|{json.dumps(shape, sort_keys=True, default=str)}"


def load_calibration(key: str, *,
                     path: os.PathLike | None = None) -> dict[str, str] | None:
    """Load sidecar decisions for ``key``; ``None`` on any problem.

    Corrupt JSON, wrong structure, unreadable file, unknown key — all
    mean "calibrate afresh", never an exception.
    """
    p = pathlib.Path(path) if path is not None else calibration_path()
    try:
        data = json.loads(p.read_text())
        entry = data[key]
        decisions = {site: choice
                     for site, choice in entry["decisions"].items()
                     if choice in ("dense", "sparse")}
    except Exception:  # noqa: BLE001 - sidecar is best-effort by design
        return None
    for site, choice in decisions.items():
        metrics.inc("backend.calibration", site=site, winner=choice,
                    source="sidecar")
    return decisions


def store_calibration(key: str, decisions: dict[str, str],
                      timings: dict | None = None, *,
                      path: os.PathLike | None = None) -> bool:
    """Persist decisions for ``key``; returns ``False`` on any failure."""
    p = pathlib.Path(path) if path is not None else calibration_path()
    try:
        try:
            data = json.loads(p.read_text())
            if not isinstance(data, dict):
                data = {}
        except Exception:  # noqa: BLE001 - start fresh over corruption
            data = {}
        data[key] = {"decisions": dict(decisions),
                     "timings": timings or {}}
        p.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=p.parent, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
        os.replace(tmp, p)
        return True
    except Exception:  # noqa: BLE001 - never fatal
        return False


def pick_winners(dense_timings: dict[str, float],
                 sparse_timings: dict[str, float]) -> dict[str, str]:
    """Per-site winners from two probe runs' stage timings.

    Stage names map one-to-one onto the calibratable sites; a site
    missing from either probe keeps the static policy (no decision).
    The ``rsolve`` site is deliberately never armed: flipping the
    Newton-refinement route (dense Kronecker vs matrix-free GMRES)
    moves converged ``R`` matrices at the ``1e-12`` level, which
    near-saturation sweep points amplify past the batched engine's
    ``1e-8`` parity budget.  Its timings are still recorded for the
    metrics surface.
    """
    stage_to_site = {"boundary": "boundary",
                     "assemble": "assembly", "reduce": "reduce"}
    winners: dict[str, str] = {}
    for stage, site in stage_to_site.items():
        td, ts = dense_timings.get(stage), sparse_timings.get(stage)
        if td is None or ts is None:
            continue
        winners[site] = "dense" if td <= ts else "sparse"
        metrics.inc("backend.calibration", site=site, winner=winners[site],
                    source="probe")
        metrics.set_gauge("backend.calibration.seconds", float(td),
                          site=site, backend="dense")
        metrics.set_gauge("backend.calibration.seconds", float(ts),
                          site=site, backend="sparse")
    return winners
