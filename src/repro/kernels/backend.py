"""Dense / sparse backend selection.

Every analytic kernel in the repo has a dense reference implementation
(small, cache-friendly, zero bookkeeping) and — since this module's
introduction — a sparse or matrix-free counterpart that wins once the
operand grows past a few hundred states.  The crossover is not subtle:
the per-class boundary system of the gang chains grows linearly with
the machine size ``P`` while its *density* falls like ``1/n`` (three
small blocks per block-row), so dense costs cross from "free" to
"dominant" somewhere around a couple hundred states and never come
back.

:func:`select_backend` centralizes that decision as a size × density
rule so every kernel (boundary solve, uniformization, PH moments,
Kronecker assembly) picks the same way.  Callers thread a user-facing
``backend`` mode through (``"auto"``, ``"dense"``, ``"sparse"``):

* ``"dense"`` — always the reference kernels (bit-compatible with the
  pre-kernels code paths);
* ``"sparse"`` — the sparse kernels wherever a sparse variant exists
  *and* the operand is big enough for CSR overhead to be harmless
  (tiny operands stay dense even here; forcing CSR on a 6x6 block
  would only slow the solve without changing a single result);
* ``"auto"`` — the size × density thresholds decide.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.kernels import adaptive
from repro.obs import metrics

__all__ = [
    "BACKENDS",
    "DENSE",
    "SPARSE",
    "AUTO",
    "SPARSE_SIZE_THRESHOLD",
    "SPARSE_MIN_SIZE",
    "SPARSE_DENSITY_THRESHOLD",
    "resolve_backend",
    "select_backend",
]

#: Recognized backend modes, in CLI/display order.
BACKENDS = ("auto", "dense", "sparse")
AUTO, DENSE, SPARSE = BACKENDS

#: ``auto`` switches to sparse kernels at this operand size (the
#: matrix dimension ``n`` of the solve / matvec in question).  Below
#: it, dense BLAS beats any sparse format on these chains.
SPARSE_SIZE_THRESHOLD = 256

#: Even under ``backend="sparse"``, operands smaller than this stay on
#: the dense kernels: CSR indices would outweigh the data.
SPARSE_MIN_SIZE = 48

#: ``auto`` only goes sparse when the operand's fill fraction is below
#: this; a half-full matrix gains nothing from compressed storage.
SPARSE_DENSITY_THRESHOLD = 0.25


def resolve_backend(backend: str | None) -> str:
    """Validate and normalize a backend mode (``None`` means ``auto``)."""
    if backend is None:
        return AUTO
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; use one of {BACKENDS}")
    return backend


def select_backend(backend: str | None, size: int,
                   density: float | None = None, *,
                   size_threshold: int = SPARSE_SIZE_THRESHOLD,
                   min_size: int = SPARSE_MIN_SIZE,
                   density_threshold: float = SPARSE_DENSITY_THRESHOLD,
                   site: str | None = None,
                   ) -> str:
    """Decide ``"dense"`` or ``"sparse"`` for one operand.

    Parameters
    ----------
    backend:
        User-facing mode (``auto`` / ``dense`` / ``sparse``; ``None``
        is ``auto``).
    size:
        Linear dimension of the operand (states in the system being
        solved, order of the PH distribution, block dimension...).
    density:
        Fill fraction ``nnz / size^2`` when the caller knows it;
        ``None`` skips the density test (structural sparsity is
        guaranteed by construction for the QBD systems, whose density
        decays like ``1/levels``).
    site:
        Optional instrumentation label; decisions made with a site are
        counted as ``backend.selected{choice, site}`` in the metrics
        registry (purely-advisory probes pass no site and stay
        uncounted).

    Returns
    -------
    str
        ``"dense"`` or ``"sparse"`` — never ``"auto"``.
    """
    mode = resolve_backend(backend)
    calibrated = adaptive.armed_decision(site) if mode == AUTO else None
    if mode == DENSE:
        choice = DENSE
    elif size < min_size:
        choice = DENSE
    elif calibrated is not None:
        # A measured per-site winner (see :mod:`repro.kernels.adaptive`)
        # overrides the static thresholds in auto mode; the tiny-operand
        # guard above still applies.
        choice = calibrated
    elif mode == SPARSE:
        choice = SPARSE
    elif size < size_threshold:
        choice = DENSE
    elif density is not None and density > density_threshold:
        choice = DENSE
    else:
        choice = SPARSE
    if site is not None:
        metrics.inc("backend.selected", choice=choice, site=site)
    return choice
