"""Batched (stacked) linear-algebra kernels for sweep-shaped workloads.

Every figure of the paper is a sweep: dozens of nearby grid points,
each solving the same family of QBDs with slightly perturbed blocks.
The per-point solvers in :mod:`repro.qbd` are small dense BLAS calls
wrapped in Python control flow, so solving points one at a time pays
the interpreter overhead once per matrix product.  The kernels here
run the *same recurrences* on ``(npoints, m, m)`` stacks — one
``np.matmul``/``np.linalg.solve`` per step for the whole batch — with
per-slice convergence masks so points converge and drop out of the
batch individually, exactly where their serial solve would stop.

Design rules (all load-bearing for the parity and resume guarantees of
:mod:`repro.workloads.batched`):

* **Same recurrence, same stopping rule.**  Each kernel mirrors its
  serial counterpart step for step (``solve_G`` logreduction,
  ``refine_R`` Newton, GTH elimination, the dense boundary solve), so
  a batched slice follows the trajectory its serial solve would.
* **Composition independence.**  Stacked ``matmul``/``solve``/``inv``
  dispatch to LAPACK/BLAS per slice, so a slice's result does not
  depend on which other points share the batch — a resumed sweep
  (smaller batch: only the pending points) reproduces the interrupted
  run's numbers.
* **Per-slice failure isolation.**  A slice that diverges, hits a
  singular system, or trips a guard is flagged in the returned ``ok``
  mask and frozen; the caller re-solves just that point through the
  serial resilience chain.  A batched kernel never raises for a
  per-slice numerical failure.

Nothing here imports above the kernels layer; callers pass plain
``ndarray`` stacks (dense — sparse operands stay on the per-point
paths, where :func:`repro.kernels.select_backend` routes them).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "stack_blocks",
    "batched_gth",
    "batched_drift",
    "batched_solve_G",
    "batched_r_from_g",
    "batched_refine_R",
    "batched_solve_R",
    "batched_boundary_solve",
]

#: Memory cap (float64 elements) for the materialized Kronecker
#: linearizations of the batched Newton refinement; bigger batches are
#: processed in sub-chunks of at most this many elements.
_KRON_ELEMENT_BUDGET = 16_000_000


def stack_blocks(mats) -> np.ndarray:
    """Stack same-shaped matrices into a C-contiguous ``(n, m, m)`` array."""
    return np.ascontiguousarray(
        np.stack([np.asarray(m, dtype=np.float64) for m in mats]))


# ---------------------------------------------------------------------------
# Stationary vectors / drift


def batched_gth(T: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """GTH stationary vectors of a stack of rate-like matrices.

    Mirrors :func:`repro.utils.linalg.solve_stationary_gth` (diagonal
    ignored, recomputed from row sums) slice by slice; the elimination
    loop runs over the small phase dimension while every update is
    vectorized across the batch.  Returns ``(pi, ok)`` where ``ok[i]``
    is ``False`` for slices whose elimination detected a reducible
    structure (the serial solver raises ``ReducibleChainError`` there).
    """
    T = np.asarray(T, dtype=np.float64)
    n, m, _ = T.shape
    ok = np.ones(n, dtype=bool)
    if m == 1:
        return np.ones((n, 1)), ok
    A = T.copy()
    idx = np.arange(m)
    A[:, idx, idx] = 0.0
    for k in range(m - 1, 0, -1):
        scale = A[:, k, :k].sum(axis=1)
        good = scale > 0.0
        ok &= good
        s = np.where(good, scale, 1.0)
        A[:, :k, k] /= s[:, None]
        A[:, :k, :k] += A[:, :k, k, None] * A[:, k, None, :k]
        A[:, idx[:k], idx[:k]] = 0.0
    pi = np.zeros((n, m))
    pi[:, 0] = 1.0
    for k in range(1, m):
        pi[:, k] = np.einsum("ni,ni->n", pi[:, :k], A[:, :k, k])
    total = pi.sum(axis=1)
    good = np.isfinite(total) & (total > 0)
    ok &= good
    return pi / np.where(good, total, 1.0)[:, None], ok


def batched_drift(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray,
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Theorem 4.4 drift test across a stack of repeating blocks.

    Returns ``(up, down, phase_stationary, ok)``; slices with
    ``ok=False`` need the serial :func:`repro.qbd.stability.drift`
    (which raises the proper ``ReducibleChainError``).
    """
    y, ok = batched_gth(A0 + A1 + A2)
    up = np.einsum("ni,ni->n", y, A0.sum(axis=2))
    down = np.einsum("ni,ni->n", y, A2.sum(axis=2))
    return up, down, y, ok


# ---------------------------------------------------------------------------
# Logarithmic reduction for G / recovery of R


def _batched_uniformize(A0, A1, A2):
    """Per-slice uniformization; returns ``(D0, D1, D2, ok)``."""
    diag = np.diagonal(A1, axis1=1, axis2=2)
    rate = -diag.min(axis=1)
    ok = rate > 0.0
    r = np.where(ok, rate, 1.0)[:, None, None]
    I = np.eye(A1.shape[1])
    return A0 / r, A1 / r + I, A2 / r, ok


def _masked_solve(lhs: np.ndarray, rhs: np.ndarray,
                  ok: np.ndarray) -> np.ndarray:
    """``np.linalg.solve`` on a stack with per-slice failure isolation.

    Updates ``ok`` in place for slices whose system is singular and
    returns the solutions (failed slices hold garbage but are masked).
    """
    try:
        return np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError:
        out = np.empty_like(rhs)
        for i in range(lhs.shape[0]):
            try:
                out[i] = np.linalg.solve(lhs[i], rhs[i])
            except np.linalg.LinAlgError:
                out[i] = 0.0
                ok[i] = False
        return out


def batched_solve_G(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, *,
                    tol: float = 1e-12, max_iter: int = 64,
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lockstep logarithmic reduction for ``G`` across a block stack.

    The recurrence is :func:`repro.qbd.rmatrix.solve_G` verbatim; each
    slice checks the same stochasticity-defect / correction stopping
    rule and freezes at its own convergence step.  Returns
    ``(G, iterations, ok)`` with per-slice doubling-step counts;
    ``ok=False`` marks slices that failed to uniformize, went
    non-finite, hit a singular ``I - U``, or exhausted ``max_iter``.
    """
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    n, d, _ = A1.shape
    D0, D1, D2, ok = _batched_uniformize(A0, A1, A2)
    I = np.eye(d)
    inv_ok = ok.copy()
    inv = _masked_solve(I - D1, np.broadcast_to(I, D1.shape).copy(), inv_ok)
    ok &= inv_ok
    H = inv @ D0
    L = inv @ D2
    G = L.copy()
    T = H.copy()
    iters = np.zeros(n, dtype=np.int64)
    active = ok.copy()
    for it in range(1, max_iter + 1):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        Ha, La, Ta = H[idx], L[idx], T[idx]
        U = Ha @ La + La @ Ha
        sub_ok = np.ones(idx.size, dtype=bool)
        Hn = _masked_solve(I - U, Ha @ Ha, sub_ok)
        Ln = _masked_solve(I - U, La @ La, sub_ok)
        Gn = G[idx] + Ta @ Ln
        Tn = Ta @ Hn
        defect = np.abs(1.0 - Gn.sum(axis=2)).max(axis=1)
        correction = np.abs(Tn).max(axis=(1, 2))
        finite = np.isfinite(defect) & np.isfinite(correction) & sub_ok
        H[idx], L[idx], G[idx], T[idx] = Hn, Ln, Gn, Tn
        iters[idx] = it
        converged = (correction < tol) | (defect < tol)
        ok[idx[~finite]] = False
        active[idx] = finite & ~converged
    ok &= ~active  # slices still iterating at max_iter did not converge
    return np.clip(G, 0.0, None), iters, ok


def batched_r_from_g(A0: np.ndarray, A1: np.ndarray, G: np.ndarray,
                     ok: np.ndarray | None = None) -> np.ndarray:
    """``R = A0 (-(A1 + A0 G))^{-1}`` per slice (cf. ``r_from_g``).

    Slices masked out by ``ok`` (or whose ``U`` is singular) yield
    garbage rows; callers re-check finiteness and mask them.
    """
    d = A1.shape[1]
    U = A1 + A0 @ G
    mask = np.ones(A0.shape[0], dtype=bool) if ok is None else ok.copy()
    lhs = np.where(mask[:, None, None], -U, np.eye(d))
    eye = np.broadcast_to(np.eye(d), lhs.shape).copy()
    inv = _masked_solve(lhs, eye, mask)
    inv[~mask] = np.nan  # surface singular slices as non-finite R
    return A0 @ inv


# ---------------------------------------------------------------------------
# Newton refinement of warm-started R iterates


def _batched_kron_operator(R, B, A2t, I):
    """Stack of ``kron(I, B^T) + kron(R, A2^T)`` linearizations.

    ``kron(P, Q)[x1*d + x2, x3*d + x4] = P[x1, x3] Q[x2, x4]``, so the
    broadcast places the left factor on the outer row/column axes and
    the right factor on the inner ones; the products and the sum pair
    the exact same operands as ``np.kron``, keeping each slice bitwise
    equal to the serial operator.
    """
    n, d, _ = R.shape
    Bt = np.transpose(B, (0, 2, 1))
    A2b = A2t[None, None, :, None, :] if A2t.ndim == 2 \
        else A2t[:, None, :, None, :]
    M = np.empty((n, d, d, d, d))
    np.multiply(I[None, :, None, :, None], Bt[:, None, :, None, :], out=M)
    M += R[:, :, None, :, None] * A2b
    return M.reshape(n, d * d, d * d)


def batched_refine_R(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray,
                     R0: np.ndarray, *, tol: float = 1e-12,
                     max_steps: int = 8,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep Newton refinement of warm-start ``R`` iterates.

    Per-slice mirror of :func:`repro.qbd.rmatrix.refine_R` (dense
    Kronecker path): same residual target, the same divergence /
    non-finiteness / negativity / spectral-radius guards, applied per
    slice.  Returns ``(R, ok)``; a slice with ``ok=False`` simply fell
    back — the caller runs its cold solve — never an error.
    """
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    R = np.array(R0, dtype=np.float64, copy=True)
    n, d, _ = A1.shape
    I = np.eye(d)
    A2t = np.transpose(A2, (0, 2, 1))
    scale = np.maximum(1.0, np.abs(A1).max(axis=(1, 2)))
    target = np.maximum(tol, 1e-14) * scale
    ok = np.ones(n, dtype=bool)
    done = np.zeros(n, dtype=bool)
    prev_resid = np.full(n, np.inf)
    # Cap the memory of the materialized d^2 x d^2 operators.
    chunk = max(1, int(_KRON_ELEMENT_BUDGET // max(1, d ** 4)))
    for _ in range(max_steps):
        idx = np.flatnonzero(ok & ~done)
        if idx.size == 0:
            break
        Ra = R[idx]
        F = A0[idx] + Ra @ A1[idx] + Ra @ Ra @ A2[idx]
        resid = np.abs(F).max(axis=(1, 2))
        finite = np.isfinite(resid)
        ok[idx[~finite]] = False
        hit = finite & (resid <= target[idx])
        done[idx[hit]] = True
        diverged = finite & ~hit & (resid >= prev_resid[idx])
        ok[idx[diverged]] = False
        step = np.flatnonzero(finite & ~hit & ~diverged)
        if step.size == 0:
            continue
        sel = idx[step]
        prev_resid[sel] = resid[step]
        for lo in range(0, sel.size, chunk):
            sub = sel[lo:lo + chunk]
            Rs = R[sub]
            M = _batched_kron_operator(Rs, A1[sub] + Rs @ A2[sub],
                                       A2t[sub], I)
            rhs = -F[step][lo:lo + chunk].reshape(sub.size, d * d)
            sub_ok = np.ones(sub.size, dtype=bool)
            h = _masked_solve(M, rhs[..., None], sub_ok)[..., 0]
            ok[sub[~sub_ok]] = False
            good = sub[sub_ok]
            R[good] = R[good] + h[sub_ok].reshape(-1, d, d)
    # Slices that ran out of steps: accept only if the final residual
    # already meets the target (the serial for-else branch).
    tail = np.flatnonzero(ok & ~done)
    if tail.size:
        Ra = R[tail]
        F = A0[tail] + Ra @ A1[tail] + Ra @ Ra @ A2[tail]
        resid = np.abs(F).max(axis=(1, 2))
        bad = ~(np.isfinite(resid) & (resid <= target[tail]))
        ok[tail[bad]] = False
    # Solvent checks: finite, essentially nonnegative, sp(R) < 1.
    live = np.flatnonzero(ok)
    if live.size:
        Ra = R[live]
        finite = np.isfinite(Ra).all(axis=(1, 2))
        rmax = np.maximum(1.0, np.abs(Ra).max(axis=(1, 2)))
        nonneg = Ra.min(axis=(1, 2)) >= -1e-8 * rmax
        ok[live[~(finite & nonneg)]] = False
        live = np.flatnonzero(ok)
        if live.size:
            sp = np.abs(np.linalg.eigvals(R[live])).max(axis=1)
            ok[live[sp >= 1.0]] = False
    return R, ok


def batched_solve_R(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, *,
                    R0: np.ndarray | None = None,
                    seeded: np.ndarray | None = None,
                    tol: float = 1e-12, max_iter: int = 64,
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Warm-refine + cold-logreduction ``R`` solve across a stack.

    Slices flagged in ``seeded`` first try the batched Newton
    refinement from ``R0``; failures (and unseeded slices) fall through
    to the lockstep logarithmic reduction — the exact
    ``solve_R(method="logreduction")`` decision tree, batched.

    Returns ``(R, refined, ok)``: ``refined`` marks slices served by
    the warm refinement, ``ok=False`` marks slices the caller must
    re-solve serially (resilience chain, other methods).
    """
    n = A1.shape[0]
    refined = np.zeros(n, dtype=bool)
    R = np.zeros_like(A1)
    if R0 is not None and seeded is not None and seeded.any():
        idx = np.flatnonzero(seeded)
        Rw, warm_ok = batched_refine_R(A0[idx], A1[idx], A2[idx], R0[idx],
                                       tol=tol)
        hit = idx[warm_ok]
        R[hit] = Rw[warm_ok]
        refined[hit] = True
    cold = np.flatnonzero(~refined)
    ok = refined.copy()
    if cold.size:
        G, _, g_ok = batched_solve_G(A0[cold], A1[cold], A2[cold],
                                     tol=tol, max_iter=max_iter)
        Rc = batched_r_from_g(A0[cold], A1[cold], G, g_ok)
        g_ok &= np.isfinite(Rc).all(axis=(1, 2))
        R[cold[g_ok]] = Rc[g_ok]
        ok[cold[g_ok]] = True
    return R, refined, ok


# ---------------------------------------------------------------------------
# Dense boundary solve


def batched_boundary_solve(M: np.ndarray, A2: np.ndarray, R: np.ndarray,
                           offsets: np.ndarray, b: int,
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Batched mirror of the dense reference boundary solve.

    ``M`` is the stack of pre-assembled balance systems *without* the
    repeating-tail fold (the caller loops the per-point boundary blocks
    once; everything afterwards — the ``R A2`` fold, normalization,
    column drop, equilibration, solve, residual check — runs batched
    here, following :func:`repro.qbd.boundary.solve_boundary` step for
    step).  Returns ``(x, ok)`` with the stacked boundary vectors;
    failed slices (singular system, residual too large, negative
    entries, non-positive mass) have ``ok=False`` and fall back to the
    serial path, which also owns the lstsq rescue.
    """
    n, N, _ = M.shape
    d = R.shape[1]
    lb = slice(int(offsets[b]), int(offsets[b + 1]))
    M = M.copy()
    M[:, lb, lb] += R @ A2
    ok = np.ones(n, dtype=bool)

    norm = np.ones((n, N))
    tail_ok = ok.copy()
    tail = _masked_solve(np.eye(d) - R, np.ones((n, d, 1)), tail_ok)[..., 0]
    ok &= tail_ok & ~(tail < 0).any(axis=1)
    norm[:, lb] = tail

    col_norms = np.linalg.norm(M, axis=1)
    ok &= (col_norms > 0.0).any(axis=1)
    drop = col_norms.argmax(axis=1)
    rows = np.arange(n)
    A = M.copy()
    A[rows, :, drop] = norm
    # Pin dead (all-zero) balance columns to pi_k = 0.
    dead_i, dead_k = np.nonzero((col_norms == 0.0)
                                & (np.arange(N)[None, :] != drop[:, None]))
    A[dead_i, dead_k, dead_k] = 1.0
    rhs = np.zeros((n, N))
    rhs[rows, drop] = 1.0
    scales = np.linalg.norm(A, axis=1)
    scales[scales == 0.0] = 1.0
    solve_ok = ok.copy()
    x = _masked_solve(np.transpose(A / scales[:, None, :], (0, 2, 1)),
                      (rhs / scales)[..., None], solve_ok)[..., 0]
    ok &= solve_ok
    residual = np.abs(np.einsum("nk,nkj->nj", x, M)).max(axis=1)
    limit = 1e-6 * np.maximum(1.0, np.abs(M).max(axis=(1, 2)))
    ok &= np.isfinite(residual) & (residual <= limit)
    ok &= ~(x < -1e-8).any(axis=1)
    x = np.clip(x, 0.0, None)
    mass = np.einsum("nk,nk->n", x, norm)
    ok &= mass > 0
    return x / np.where(mass > 0, mass, 1.0)[:, None], ok
