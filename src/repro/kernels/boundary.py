"""Block-tridiagonal boundary solve for a QBD.

The boundary balance system ``x M = 0`` of
:func:`repro.qbd.boundary.solve_boundary` is block-tridiagonal by
construction — level ``j`` only exchanges probability flux with levels
``j - 1`` and ``j + 1`` — yet the dense reference materializes the
full ``n x n`` matrix and runs an ``O(n^3)`` solve.  With boundary
levels growing linearly in the machine size ``P`` (``b = c_p = P/g``)
that cubic cost is what locks the scaling study out of P in the
hundreds.

This module solves the same system by block-LU forward elimination.
Write ``D_j = B[j][j]`` (with ``R A2`` folded into ``D_b``),
``U_j = B[j][j+1]`` and ``L_j = B[j][j-1]``.  The Schur complements

    C_0 = D_0,      C_j = D_j - L_j C_{j-1}^{-1} U_{j-1}

satisfy ``x_j = -x_{j+1} L_{j+1} C_j^{-1}`` for ``j < b`` and
``x_b C_b = 0``, so ``pi_b`` is a left null vector of the *last* Schur
complement (a ``d x d`` SVD) and the remaining levels come from back
substitution — ``O(b d^3)`` total, never materializing anything larger
than one block.

When consecutive interior levels carry identical blocks (a
level-independent stretch of the boundary) the Schur recursion
converges geometrically to a fixed point; the elimination detects the
stall and freezes ``C`` for the rest of the stretch, so the forward
pass costs ``O(1)`` factorizations instead of ``O(b)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.kernels.sparse import Factorization, density, is_sparse, to_dense
from repro.kernels.backend import select_backend

__all__ = ["solve_boundary_blocktridiag"]

#: Relative stall threshold for freezing the Schur recursion on a
#: level-independent stretch: tight enough that the frozen complement
#: agrees with the exact one to the last few ulps (the parity suite
#: holds the block path to 1e-10 of the dense reference).
_FREEZE_RTOL = 1e-14


def _same_blocks(p, q) -> bool:
    """Value-equality of two optional blocks without densifying."""
    if p is None or q is None:
        return p is q
    if p is q:
        return True
    if p.shape != q.shape:
        return False
    if is_sparse(p) or is_sparse(q):
        if not (is_sparse(p) and is_sparse(q)):
            return False
        diff = (p - q)
        return diff.nnz == 0 or float(abs(diff).max()) == 0.0
    return np.array_equal(p, q)


def solve_boundary_blocktridiag(process, R: np.ndarray,
                                *, backend: str | None = None,
                                ) -> list[np.ndarray]:
    """Boundary vectors ``pi_0 .. pi_b`` via block-LU elimination.

    Accepts the same inputs as the dense
    :func:`repro.qbd.boundary.solve_boundary` (boundary blocks may
    additionally be CSR) and returns the same normalized level
    vectors.  Raises :class:`~repro.errors.ConvergenceError` when the
    elimination degenerates (singular Schur complement, residual
    check failure, negative mass) — callers treat that as a signal to
    fall back to the dense reference path.
    """
    from repro.resilience.faults import maybe_fault

    maybe_fault("kernels.sparse", key="boundary")
    b = process.boundary_levels
    dims = process.boundary_dims()
    d = process.phase_dim
    R = np.asarray(R, dtype=np.float64)
    if R.shape != (d, d):
        raise ValidationError(f"R must be {d}x{d}, got {R.shape}")

    boundary = process.boundary
    RA2 = R @ to_dense(process.A2)
    scale = max(1.0, float(np.max(np.abs(to_dense(boundary[b][b])))))

    def _diag(j: int) -> np.ndarray:
        D = to_dense(boundary[j][j])
        if j == b:
            D = D + RA2
        return D

    # Forward elimination: factorizations of C_j and the coupling
    # products Z_j = C_j^{-1} U_j needed by both passes.  ``lus[j]``
    # and ``Zs[j]`` may alias the frozen stretch's shared objects.
    lus: list[Factorization] = []
    Zs: list[np.ndarray] = []
    C_prev: np.ndarray | None = None
    frozen = False

    def _stretch_continues(j: int) -> bool:
        # Reusing (C_{j-1}, Z_{j-1}) as (C_j, Z_j) needs the level-j
        # triple to repeat the level-(j-1) one: same diagonal, same
        # down-block, same up-block.
        return (_same_blocks(boundary[j][j], boundary[j - 1][j - 1])
                and _same_blocks(boundary[j][j - 1],
                                 boundary[j - 1][j - 2] if j >= 2 else None)
                and _same_blocks(boundary[j][j + 1], boundary[j - 1][j]))

    for j in range(b):
        if frozen and _stretch_continues(j):
            lus.append(lus[-1])
            Zs.append(Zs[-1])
            continue
        frozen = False
        C = _diag(j)
        if j > 0:
            L = boundary[j][j - 1]
            if L is not None:
                C = C - to_dense(L @ Zs[j - 1])
        try:
            lu = Factorization(
                C, backend=select_backend(backend, C.shape[0], density(C)))
        except RuntimeError as exc:  # splu raises RuntimeError on singular
            raise ConvergenceError(
                f"block elimination: singular Schur complement at level {j}"
                f" ({exc})") from None
        U = boundary[j][j + 1]
        if U is None:
            raise ConvergenceError(
                f"block elimination: boundary level {j} has no upward "
                "block; the chain is reducible across levels")
        Z = lu.solve(to_dense(U))
        if not np.all(np.isfinite(Z)):
            raise ConvergenceError(
                f"block elimination: singular Schur complement at level {j}")
        lus.append(lu)
        Zs.append(Z)
        # Freeze detection: a repeated block triple with a stalled
        # complement means the Schur recursion has hit its fixed point;
        # subsequent identical levels can reuse this factorization.
        if j >= 2 and C_prev is not None and C.shape == C_prev.shape \
                and _stretch_continues(j) \
                and float(np.max(np.abs(C - C_prev))) <= _FREEZE_RTOL * scale:
            frozen = True
        C_prev = C

    # Last Schur complement: pi_b spans its left null space.
    C_b = _diag(b)
    if b > 0:
        L = boundary[b][b - 1]
        if L is not None:
            C_b = C_b - to_dense(L @ Zs[b - 1])
    try:
        _, svals, Vh = np.linalg.svd(C_b.T)
    except np.linalg.LinAlgError as exc:
        raise ConvergenceError(
            f"block elimination: SVD of final complement failed ({exc})"
        ) from None
    if d > 1 and svals[-2] <= 1e-12 * max(svals[0], 1.0):
        raise ConvergenceError(
            "block elimination: final Schur complement has null space of "
            "dimension > 1", residual=float(svals[-2]))
    pi = [np.zeros(0)] * (b + 1)
    pi[b] = Vh[-1]
    if pi[b].sum() < 0:
        pi[b] = -pi[b]

    # Back substitution: x_{j} = -x_{j+1} L_{j+1} C_j^{-1}.
    for j in range(b - 1, -1, -1):
        L = boundary[j + 1][j]
        if L is None:
            pi[j] = np.zeros(dims[j])
            continue
        v = np.asarray(pi[j + 1] @ L).ravel()
        pi[j] = -lus[j].solve_transposed(v)

    # Residual check against the balance columns, computed blockwise.
    worst = 0.0
    for j in range(b + 1):
        r = pi[j] @ _diag(j)
        if j > 0:
            U = boundary[j - 1][j]
            if U is not None:
                r = r + np.asarray(pi[j - 1] @ U).ravel()
        if j < b:
            L = boundary[j + 1][j]
            if L is not None:
                r = r + np.asarray(pi[j + 1] @ L).ravel()
        worst = max(worst, float(np.max(np.abs(r))) if r.size else 0.0)
    amp = max(1.0, max(float(np.max(np.abs(v))) for v in pi))
    if not np.isfinite(worst) or worst > 1e-8 * scale * amp:
        raise ConvergenceError(
            "block elimination residual too large", residual=worst)

    # Tail-aware normalization (eq. 24), as in the dense reference.
    tail = np.linalg.solve(np.eye(d) - R, np.ones(d))
    if np.any(tail < 0):
        raise ValidationError(
            "(I - R)^{-1} e has negative entries; sp(R) >= 1 (unstable QBD)"
        )
    if min(float(v.min()) for v in pi if v.size) < -1e-8 * amp:
        raise ConvergenceError(
            "block elimination produced a significantly negative vector")
    pi = [np.clip(v, 0.0, None) for v in pi]
    mass = sum(float(v.sum()) for v in pi[:b]) + float(pi[b] @ tail)
    if mass <= 0:
        raise ValidationError("boundary solve produced zero probability mass")
    return [v / mass for v in pi]
