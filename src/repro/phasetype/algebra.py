"""Closure operations on phase-type distributions.

The PH class is closed under convolution, finite mixture, minimum and
maximum.  Convolution (Theorem 2.5 of the paper) is the operation the
gang-scheduling analysis leans on: the vacation period ``Z_p`` seen by
class ``p`` is the convolution of every other class's quantum and all
the context-switch overheads.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.phasetype.distribution import PhaseType
from repro.utils.linalg import kron_sum

__all__ = ["convolve", "convolve_many", "mixture", "scale", "minimum", "maximum"]


def convolve(f: PhaseType, g: PhaseType) -> PhaseType:
    """Convolution ``F * G``: the distribution of ``X + Y`` (independent).

    Implements Theorem 2.5 of the paper: for ``F = PH(vF, SF)`` of order
    ``nF`` and ``G = PH(vG, SG)`` of order ``nG``, the convolution is the
    order ``nF + nG`` PH with initial vector ``[vF, (1 - vF e) vG]`` and
    sub-generator::

        [ SF   sF0 vG ]
        [ 0       SG  ]

    where ``sF0 = -SF e``.  (The paper states the zero-atom-free case
    ``[vF, 0]``; the ``(1 - vF e) vG`` term carries F's atom at zero.)
    """
    nf, ng = f.order, g.order
    S = np.zeros((nf + ng, nf + ng))
    S[:nf, :nf] = f.S
    S[:nf, nf:] = np.outer(f.exit_rates, g.alpha)
    S[nf:, nf:] = g.S
    alpha = np.concatenate([f.alpha, f.atom_at_zero * g.alpha])
    # Valid by construction from validated operands (Theorem 2.5).
    return PhaseType.from_trusted(alpha, S)


def convolve_many(parts: Sequence[PhaseType]) -> PhaseType:
    """Convolution of a sequence of PH distributions (left to right).

    Used to assemble the heavy-traffic vacation distribution
    ``C_p * G_{p+1} * C_{p+1} * ... * G_{p-1} * C_{p-1}``
    of Theorem 4.1 in one call.

    The chain is built in one preallocated buffer instead of pairwise
    :func:`convolve` calls.  Each step replays the pairwise arithmetic
    exactly — the intermediate's exit rates and zero-atom are the same
    row/prefix sums over slices holding the already-written values — so
    the result is bit-identical to the folded form while skipping every
    intermediate ``PhaseType`` (this chain runs once per class per
    fixed-point iteration; see ``repro.core.vacation``).
    """
    parts = list(parts)
    if not parts:
        raise ValidationError("convolve_many requires at least one distribution")
    if len(parts) == 1:
        return parts[0]
    orders = [p.order for p in parts]
    total = sum(orders)
    S = np.zeros((total, total))
    alpha = np.empty(total)
    pos = orders[0]
    S[:pos, :pos] = parts[0].S
    alpha[:pos] = parts[0].alpha
    for p in parts[1:]:
        n = p.order
        a = np.asarray(p.alpha)
        exit_prev = np.clip(-S[:pos, :pos].sum(axis=1), 0.0, None)
        atom_prev = max(0.0, 1.0 - float(alpha[:pos].sum()))
        S[:pos, pos:pos + n] = np.outer(exit_prev, a)
        S[pos:pos + n, pos:pos + n] = p.S
        alpha[pos:pos + n] = atom_prev * a
        pos += n
    return PhaseType.from_trusted(alpha, S)


def mixture(weights: Sequence[float], parts: Sequence[PhaseType]) -> PhaseType:
    """Finite mixture ``sum_i w_i F_i`` as a PH distribution.

    The representation is block-diagonal: each component keeps its own
    phases, and the initial vector distributes mass ``w_i alpha_i``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    parts = list(parts)
    if weights.ndim != 1 or len(parts) != weights.size or not parts:
        raise ValidationError("weights and parts must be non-empty, equal length")
    if np.any(weights < 0) or abs(weights.sum() - 1.0) > 1e-9:
        raise ValidationError("weights must form a probability vector")
    orders = [p.order for p in parts]
    total = sum(orders)
    S = np.zeros((total, total))
    alpha = np.zeros(total)
    pos = 0
    for w, p in zip(weights, parts):
        S[pos:pos + p.order, pos:pos + p.order] = p.S
        alpha[pos:pos + p.order] = w * p.alpha
        pos += p.order
    return PhaseType.from_trusted(alpha, S)


def scale(f: PhaseType, c: float) -> PhaseType:
    """Distribution of ``c X`` for ``c > 0``: divide the sub-generator by ``c``."""
    if c <= 0:
        raise ValidationError(f"scale factor must be positive, got {c}")
    return PhaseType.from_trusted(f.alpha, f.S / c)


def minimum(f: PhaseType, g: PhaseType) -> PhaseType:
    """Distribution of ``min(X, Y)`` for independent PH ``X``, ``Y``.

    Both chains run in parallel (Kronecker sum); absorption of either
    absorbs the pair.  Order is ``nF * nG``.
    """
    alpha = np.kron(f.alpha, g.alpha)
    S = kron_sum(f.S, g.S)
    # Atoms at zero in either operand put mass at zero for the minimum;
    # the deficit of alpha already accounts for this:
    # sum(kron(aF, aG)) = (aF e)(aG e).
    return PhaseType.from_trusted(alpha, S)


def maximum(f: PhaseType, g: PhaseType) -> PhaseType:
    """Distribution of ``max(X, Y)`` for independent PH ``X``, ``Y``.

    Runs both chains in parallel, then lets the survivor finish alone.
    Order is ``nF * nG + nF + nG``.
    """
    nf, ng = f.order, g.order
    n_joint = nf * ng
    total = n_joint + nf + ng
    S = np.zeros((total, total))
    # Joint block: both alive.
    S[:n_joint, :n_joint] = kron_sum(f.S, g.S)
    # G absorbs first -> F continues alone: block[(i,j), i'] = d(i,i') g_exit[j].
    S[:n_joint, n_joint:n_joint + nf] = np.kron(np.eye(nf), g.exit_rates.reshape(ng, 1))
    # F absorbs first -> G continues alone: block[(i,j), j'] = d(j,j') f_exit[i].
    S[:n_joint, n_joint + nf:] = np.kron(f.exit_rates.reshape(nf, 1), np.eye(ng))
    S[n_joint:n_joint + nf, n_joint:n_joint + nf] = f.S
    S[n_joint + nf:, n_joint + nf:] = g.S
    alpha = np.zeros(total)
    alpha[:n_joint] = np.kron(f.alpha, g.alpha)
    # If one operand starts absorbed (atom at zero), the max is just the other.
    alpha[n_joint:n_joint + nf] = g.atom_at_zero * f.alpha
    alpha[n_joint + nf:] = f.atom_at_zero * g.alpha
    return PhaseType.from_trusted(alpha, S)
