"""Fast repeated sampling from phase-type distributions.

:meth:`repro.phasetype.distribution.PhaseType.sample` is convenient but
rebuilds the embedded jump chain on every call; a discrete-event
simulation draws millions of variates, so :class:`PhaseTypeSampler`
precomputes everything once and exposes recognized fast paths:

* order-1 PH → a single ``rng.exponential`` call;
* pure Erlang chains → a ``rng.gamma`` call (integer shape);
* anything else → the precomputed jump-chain walk.

All paths sample the exact distribution.
"""

from __future__ import annotations

import numpy as np

from repro.phasetype.distribution import PhaseType

__all__ = ["PhaseTypeSampler", "sampler_for"]

_CACHE: dict[PhaseType, "PhaseTypeSampler"] = {}


def sampler_for(dist: PhaseType) -> "PhaseTypeSampler":
    """Memoized sampler (PhaseType is hashable by representation)."""
    s = _CACHE.get(dist)
    if s is None:
        s = PhaseTypeSampler(dist)
        _CACHE[dist] = s
    return s


class PhaseTypeSampler:
    """Precompiled sampler for one PH distribution."""

    def __init__(self, dist: PhaseType):
        self.dist = dist
        m = dist.order
        S = np.asarray(dist.S)
        alpha = np.asarray(dist.alpha)
        exit_rates = np.asarray(dist.exit_rates)
        self._atom = dist.atom_at_zero

        self._exp_rate: float | None = None
        self._erlang: tuple[int, float] | None = None
        if m == 1 and self._atom < 1e-15:
            self._exp_rate = float(-S[0, 0])
        elif self._atom < 1e-15 and self._is_pure_erlang(alpha, S, exit_rates):
            self._erlang = (m, float(-S[0, 0]))

        # General path: embedded jump chain.
        self._total_rates = -np.diag(S)
        jump = np.zeros((m, m + 1))
        for i in range(m):
            r = self._total_rates[i]
            if r > 0:
                jump[i, :m] = S[i] / r
                jump[i, i] = 0.0
                jump[i, m] = exit_rates[i] / r
            else:  # pragma: no cover - excluded by validation
                jump[i, m] = 1.0
        self._jump_cum = np.cumsum(jump, axis=1)
        init = np.append(alpha, self._atom)
        self._init = init / init.sum()
        self._mean_rates_inv = np.where(self._total_rates > 0,
                                        1.0 / np.maximum(self._total_rates, 1e-300),
                                        0.0)

    @staticmethod
    def _is_pure_erlang(alpha: np.ndarray, S: np.ndarray,
                        exit_rates: np.ndarray) -> bool:
        m = S.shape[0]
        if alpha[0] != 1.0 or np.any(alpha[1:] != 0.0):
            return False
        rate = -S[0, 0]
        for i in range(m):
            if S[i, i] != -rate:
                return False
            expected_next = rate if i + 1 < m else 0.0
            row = S[i].copy()
            row[i] = 0.0
            if i + 1 < m:
                if row[i + 1] != expected_next:
                    return False
                row[i + 1] = 0.0
            if np.any(row != 0.0) or (i + 1 == m and exit_rates[i] != rate):
                return False
        return True

    def draw(self, rng: np.random.Generator) -> float:
        """One variate."""
        if self._exp_rate is not None:
            return float(rng.exponential(1.0 / self._exp_rate))
        if self._erlang is not None:
            k, rate = self._erlang
            return float(rng.gamma(k, 1.0 / rate))
        return float(self.draw_batch(rng, 1)[0])

    def draw_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` variates (vectorized walk over the jump chain)."""
        if self._exp_rate is not None:
            return rng.exponential(1.0 / self._exp_rate, size=n)
        if self._erlang is not None:
            k, rate = self._erlang
            return rng.gamma(k, 1.0 / rate, size=n)
        m = self.dist.order
        phases = rng.choice(m + 1, size=n, p=self._init)
        times = np.zeros(n)
        active = phases < m
        while np.any(active):
            idx = np.nonzero(active)[0]
            ph = phases[idx]
            times[idx] += rng.exponential(self._mean_rates_inv[ph])
            u = rng.random(len(idx))
            nxt = (u[:, None] < self._jump_cum[ph]).argmax(axis=1)
            phases[idx] = nxt
            active[idx] = nxt < m
        return times
