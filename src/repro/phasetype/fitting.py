"""Moment-matching construction of low-order PH distributions.

The non-heavy-traffic fixed point of Section 4.3 produces *effective
quantum* distributions whose exact PH representation has one phase per
truncated chain state — too large to feed back into the next round of
state-space construction.  The paper itself observes (citing the
insensitivity results of Schassberger and Walrand, its refs [21, 22,
26]) that steady-state means typically depend only on the first few
moments of the parameter distributions.  This module exploits that: it
replaces a large PH by a small one that matches two or three moments.

Two-moment matching uses the classical recipes:

* ``scv == 1`` — exponential;
* ``scv < 1`` — mixture of Erlang-(k-1) and Erlang-k with a common rate
  (Tijms' construction), exact for any ``scv in (0, 1]``;
* ``scv > 1`` — two-branch balanced-means hyperexponential.

Three-moment matching targets a two-phase Coxian via numerical solution
seeded from the two-moment fit, falling back (with a flag) when the
moment triple is infeasible for the family.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize

from repro.errors import ValidationError
from repro.phasetype.builders import coxian, erlang, exponential, hyperexponential
from repro.phasetype.algebra import mixture
from repro.phasetype.distribution import PhaseType

__all__ = ["match_two_moments", "match_three_moments", "fit_moments"]


def match_two_moments(mean: float, scv: float) -> PhaseType:
    """PH distribution matching a mean and squared coefficient of variation.

    Parameters
    ----------
    mean:
        Target mean, positive.
    scv:
        Target squared coefficient of variation, positive.  Values very
        close to 0 produce high-order Erlangs; the order is capped at
        100 stages (SCV 0.01), which changes the matched SCV for
        smaller requests.

    Returns
    -------
    PhaseType
        Order 1 (exponential), order ``k <= 100`` (Erlang mixture) for
        ``scv < 1``, or order 2 (hyperexponential) for ``scv > 1``.
    """
    if mean <= 0:
        raise ValidationError(f"mean must be positive, got {mean}")
    if scv <= 0:
        raise ValidationError(f"scv must be positive, got {scv}")
    if abs(scv - 1.0) < 1e-12:
        return exponential(mean=mean)
    if scv > 1.0:
        # Balanced-means H2: p_i proportional to branch rate.
        root = math.sqrt((scv - 1.0) / (scv + 1.0))
        p1 = 0.5 * (1.0 + root)
        p2 = 1.0 - p1
        r1 = 2.0 * p1 / mean
        r2 = 2.0 * p2 / mean
        return hyperexponential([p1, p2], [r1, r2])
    # scv < 1: Erlang(k-1)/Erlang(k) mixture with common rate, where
    # 1/k <= scv <= 1/(k-1).
    k = max(2, math.ceil(1.0 / scv))
    if k > 100:
        k = 100  # cap the order; SCV floor of 1/100
        scv = max(scv, 1.0 / k)
    p = (1.0 / (1.0 + scv)) * (k * scv - math.sqrt(k * (1.0 + scv) - k * k * scv))
    p = min(max(p, 0.0), 1.0)
    rate = (k - p) / mean
    if p == 0.0:
        return erlang(k, rate)
    if p == 1.0:
        return erlang(k - 1, rate)
    return mixture([p, 1.0 - p], [erlang(k - 1, rate), erlang(k, rate)])


def _coxian2_moments(l1: float, l2: float, a: float) -> tuple[float, float, float]:
    """First three raw moments of a 2-phase Coxian (rates l1, l2, continue prob a)."""
    u = 1.0 / l1
    v = 1.0 / l2
    m1 = u + a * v
    m2 = 2.0 * (u * u + a * u * v + a * v * v)
    m3 = 6.0 * (u ** 3 + a * u * u * v + a * u * v * v + a * v ** 3)
    return m1, m2, m3


def match_three_moments(m1: float, m2: float, m3: float,
                        *, strict: bool = False) -> PhaseType:
    """PH distribution matching three raw moments when feasible.

    Tries a two-phase Coxian (which covers a large feasible region);
    if the numerical solve fails or the triple is outside the family's
    region, falls back to :func:`match_two_moments` on ``(m1, scv)``
    unless ``strict`` is set, in which case a
    :class:`~repro.errors.ValidationError` is raised.
    """
    if m1 <= 0 or m2 <= 0 or m3 <= 0:
        raise ValidationError("all moments must be positive")
    scv = m2 / m1 ** 2 - 1.0
    if scv <= 0:
        if strict:
            raise ValidationError(f"moment pair infeasible: scv={scv}")
        # Deterministic-ish: high-order Erlang on (m1, tiny scv).
        return match_two_moments(m1, max(scv + 1e-12, 1e-2))
    if abs(scv - 1.0) < 1e-9:
        exp_m3 = 6.0 * m1 ** 3
        if abs(m3 - exp_m3) / exp_m3 < 1e-6:
            return exponential(mean=m1)

    seed = match_two_moments(m1, scv)

    def residual(x):
        l1, l2, a_logit = x
        a = 1.0 / (1.0 + math.exp(-a_logit))
        c1, c2, c3 = _coxian2_moments(abs(l1), abs(l2), a)
        return [(c1 - m1) / m1, (c2 - m2) / m2, (c3 - m3) / m3]

    # Seed from the two-moment fit's mean split.
    x0 = np.array([2.0 / m1, 1.0 / m1, 0.0])
    sol = optimize.least_squares(residual, x0, xtol=1e-14, ftol=1e-14, gtol=1e-14)
    l1, l2 = abs(sol.x[0]), abs(sol.x[1])
    a = 1.0 / (1.0 + math.exp(-sol.x[2]))
    ok = sol.success and float(np.max(np.abs(sol.fun))) < 1e-7 and l1 > 0 and l2 > 0
    if ok:
        return coxian([l1, l2], [1.0 - a, 1.0])
    if strict:
        raise ValidationError(
            f"three-moment match infeasible for Coxian-2: "
            f"m=({m1}, {m2}, {m3}), residual={np.max(np.abs(sol.fun)):.2e}"
        )
    return seed


def fit_moments(moments, *, strict: bool = False) -> PhaseType:
    """Dispatch on the number of supplied raw moments.

    ``moments`` is a sequence of 1–3 raw moments ``[m1]``, ``[m1, m2]``
    or ``[m1, m2, m3]``.  One moment yields an exponential; two, the
    two-moment match; three, the three-moment match.
    """
    ms = [float(m) for m in moments]
    if not 1 <= len(ms) <= 3:
        raise ValidationError(f"fit_moments takes 1-3 moments, got {len(ms)}")
    if len(ms) == 1:
        return exponential(mean=ms[0])
    if len(ms) == 2:
        scv = ms[1] / ms[0] ** 2 - 1.0
        if scv <= 0:
            if strict:
                raise ValidationError(f"moment pair infeasible: scv={scv}")
            scv = 1e-2
        return match_two_moments(ms[0], scv)
    return match_three_moments(ms[0], ms[1], ms[2], strict=strict)
