"""Phase-type (PH) distributions.

A phase-type distribution is the law of the time to absorption of a
finite continuous-time Markov chain with one absorbing state
(Section 2.5 of the paper).  It is parameterized by an initial
sub-probability vector ``alpha`` over the ``m`` transient phases and an
``m x m`` sub-generator ``S``; the exit-rate vector is
``s0 = -S @ ones``.

The class :class:`~repro.phasetype.distribution.PhaseType` provides
densities, moments and sampling; :mod:`~repro.phasetype.builders`
provides the standard named families (exponential, Erlang,
hyper/hypo-exponential, Coxian); :mod:`~repro.phasetype.algebra`
provides the closure operations (convolution — Theorem 2.5 of the
paper — finite mixture, scaling, order statistics);
:mod:`~repro.phasetype.fitting` provides moment-matching used to reduce
the order of effective-quantum distributions inside the fixed-point
iteration.
"""

from repro.phasetype.algebra import (
    convolve,
    convolve_many,
    maximum,
    minimum,
    mixture,
    scale,
)
from repro.phasetype.builders import (
    coxian,
    erlang,
    exponential,
    generalized_erlang,
    hyperexponential,
    hypoexponential,
)
from repro.phasetype.distribution import PhaseType
from repro.phasetype.em import HyperErlangFit, fit_hyper_erlang, fit_ph_em
from repro.phasetype.equilibrium import equilibrium, residual_moment
from repro.phasetype.fitting import (
    fit_moments,
    match_two_moments,
    match_three_moments,
)
from repro.phasetype.random import PhaseTypeSampler, sampler_for

__all__ = [
    "PhaseType",
    "exponential",
    "erlang",
    "generalized_erlang",
    "hypoexponential",
    "hyperexponential",
    "coxian",
    "convolve",
    "convolve_many",
    "mixture",
    "scale",
    "minimum",
    "maximum",
    "fit_moments",
    "match_two_moments",
    "match_three_moments",
    "equilibrium",
    "residual_moment",
    "fit_ph_em",
    "fit_hyper_erlang",
    "HyperErlangFit",
    "PhaseTypeSampler",
    "sampler_for",
]
