"""Constructors for the standard named phase-type families.

Every builder accepts either the natural rate parameters or a target
``mean``, and returns a :class:`~repro.phasetype.distribution.PhaseType`.
These are the families the paper's examples use: exponential
interarrival/service/overhead distributions and Erlang-``K`` quantum
lengths (Figure 1), with the general machinery accepting any PH.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.phasetype.distribution import PhaseType

__all__ = [
    "exponential",
    "erlang",
    "generalized_erlang",
    "hypoexponential",
    "hyperexponential",
    "coxian",
]


def _positive(value: float, name: str) -> float:
    value = float(value)
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def exponential(rate: float | None = None, *, mean: float | None = None) -> PhaseType:
    """Exponential distribution as an order-1 PH.

    Exactly one of ``rate`` and ``mean`` must be given.
    """
    if (rate is None) == (mean is None):
        raise ValidationError("specify exactly one of rate= or mean=")
    lam = _positive(rate if rate is not None else 1.0 / _positive(mean, "mean"), "rate")
    # Canonical valid forms: the scalar parameters are validated above,
    # so the (alpha, S) pairs are subgenerators by construction.
    return PhaseType.from_trusted([1.0], [[-lam]])


def erlang(k: int, rate: float | None = None, *, mean: float | None = None) -> PhaseType:
    """Erlang-``k`` distribution: ``k`` exponential stages in series.

    ``rate`` is the per-stage rate.  Given ``mean``, the per-stage rate
    is ``k / mean`` (as in the paper's Section 2.5 example, where a
    K-stage Erlang with mean ``1/mu`` has stage rate ``K mu``).
    Erlang-``k`` has SCV ``1/k``; large ``k`` approximates a
    deterministic quantum.
    """
    k = int(k)
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if (rate is None) == (mean is None):
        raise ValidationError("specify exactly one of rate= or mean=")
    stage_rate = _positive(rate if rate is not None else k / _positive(mean, "mean"),
                           "rate")
    return generalized_erlang([stage_rate] * k)


def generalized_erlang(rates: Sequence[float]) -> PhaseType:
    """Stages in series with possibly distinct rates (hypoexponential).

    Alias of :func:`hypoexponential`, named for the generalized-Erlang
    terminology common in the PH-fitting literature.
    """
    return hypoexponential(rates)


def hypoexponential(rates: Sequence[float]) -> PhaseType:
    """Sum of independent exponentials with the given rates (in series)."""
    rates = [_positive(r, "stage rate") for r in rates]
    m = len(rates)
    if m == 0:
        raise ValidationError("at least one stage rate is required")
    S = np.zeros((m, m))
    for i, r in enumerate(rates):
        S[i, i] = -r
        if i + 1 < m:
            S[i, i + 1] = r
    alpha = np.zeros(m)
    alpha[0] = 1.0
    return PhaseType.from_trusted(alpha, S)


def hyperexponential(probs: Sequence[float], rates: Sequence[float]) -> PhaseType:
    """Probabilistic mixture of exponentials (parallel branches).

    ``probs`` must be a probability vector; branch ``i`` is exponential
    with rate ``rates[i]``.  Hyperexponentials have SCV ``>= 1`` and are
    the canonical high-variability PH family.
    """
    probs = np.asarray(probs, dtype=np.float64)
    rates = [_positive(r, "branch rate") for r in rates]
    if probs.ndim != 1 or len(rates) != probs.size:
        raise ValidationError("probs and rates must be 1-D of equal length")
    if np.any(probs < 0) or abs(probs.sum() - 1.0) > 1e-9:
        raise ValidationError("probs must be a probability vector")
    S = np.diag([-r for r in rates])
    return PhaseType.from_trusted(probs, S)


def coxian(rates: Sequence[float], completion_probs: Sequence[float]) -> PhaseType:
    """Coxian distribution: stages in series with early-exit probabilities.

    After stage ``i`` (rate ``rates[i]``), the process exits with
    probability ``completion_probs[i]`` and otherwise continues to
    stage ``i+1``.  The final stage must have completion probability 1.
    Coxians of order ``m`` can match any ``2m - 1`` moments and are the
    target family of the three-moment fitter.
    """
    rates = [_positive(r, "stage rate") for r in rates]
    ps = [float(p) for p in completion_probs]
    m = len(rates)
    if len(ps) != m:
        raise ValidationError("rates and completion_probs must have equal length")
    if m == 0:
        raise ValidationError("at least one stage is required")
    for i, p in enumerate(ps):
        if not 0.0 <= p <= 1.0:
            raise ValidationError(f"completion_probs[{i}]={p} not in [0, 1]")
    if abs(ps[-1] - 1.0) > 1e-12:
        raise ValidationError("the final completion probability must be 1")
    S = np.zeros((m, m))
    for i in range(m):
        S[i, i] = -rates[i]
        if i + 1 < m:
            S[i, i + 1] = rates[i] * (1.0 - ps[i])
    alpha = np.zeros(m)
    alpha[0] = 1.0
    return PhaseType.from_trusted(alpha, S)
