"""Fitting phase-type distributions to data by expectation-maximization.

The paper grounds its PH assumption in the fitting literature — "a
considerable body of research has examined the fitting of phase-type
distributions to empirical data" (citing Asmussen-Nerman-Olsson's EM
and Lang-Arthur's evaluations).  This module implements the
*hyper-Erlang* EM of that family: a mixture of Erlang branches

    f(x) = sum_m  alpha_m * Erlang(x; r_m, lambda_m)

which is dense in all distributions on ``(0, inf)`` (like general PH)
but has a closed-form, numerically robust M-step.  Branch structures
(the orders ``r_m``) are selected by log-likelihood over a small
candidate set for the given total order.

Use :func:`fit_ph_em` on measured interarrival/service/overhead samples
and feed the result straight into :class:`~repro.core.config.ClassConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.errors import ConvergenceError, ValidationError
from repro.phasetype.builders import erlang
from repro.phasetype.algebra import mixture
from repro.phasetype.distribution import PhaseType

__all__ = ["HyperErlangFit", "fit_hyper_erlang", "fit_ph_em"]


@dataclass(frozen=True)
class HyperErlangFit:
    """Result of one EM run.

    Attributes
    ----------
    distribution:
        The fitted mixture as a :class:`PhaseType`.
    weights, orders, rates:
        Branch parameters (``alpha_m``, ``r_m``, ``lambda_m``).
    log_likelihood:
        Final average log-likelihood per sample.
    iterations:
        EM iterations used.
    """

    distribution: PhaseType
    weights: tuple[float, ...]
    orders: tuple[int, ...]
    rates: tuple[float, ...]
    log_likelihood: float
    iterations: int


def _log_erlang_pdf(x: np.ndarray, r: int, lam: float) -> np.ndarray:
    """``log f(x)`` of Erlang(r, lam), vectorized and overflow-safe."""
    return (r * np.log(lam) + (r - 1) * np.log(x) - lam * x
            - special.gammaln(r))


def fit_hyper_erlang(samples, orders, *, max_iter: int = 500,
                     tol: float = 1e-9,
                     rng: np.random.Generator | None = None) -> HyperErlangFit:
    """EM fit of a hyper-Erlang mixture with fixed branch orders.

    Parameters
    ----------
    samples:
        Positive observations.
    orders:
        Erlang order of each branch, e.g. ``[1, 2, 4]``.
    tol:
        Stop when the average log-likelihood improves by less than this.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 1 or x.size < 2:
        raise ValidationError("need at least two 1-D samples")
    if np.any(x <= 0):
        raise ValidationError("samples must be strictly positive")
    orders = [int(r) for r in orders]
    if not orders or any(r < 1 for r in orders):
        raise ValidationError(f"branch orders must be positive ints: {orders}")
    M = len(orders)
    rng = rng or np.random.default_rng(0)

    # Initialization: spread branch means across the sample quantiles.
    qs = np.quantile(x, (np.arange(M) + 0.5) / M)
    rates = np.array([r / max(q, 1e-12) for r, q in zip(orders, qs)])
    weights = np.full(M, 1.0 / M)

    prev_ll = -np.inf
    for it in range(1, max_iter + 1):
        # E-step in log space.
        log_comp = np.stack([
            np.log(max(weights[m], 1e-300))
            + _log_erlang_pdf(x, orders[m], rates[m])
            for m in range(M)
        ])                                   # (M, n)
        log_mix = special.logsumexp(log_comp, axis=0)
        ll = float(np.mean(log_mix))
        resp = np.exp(log_comp - log_mix)    # responsibilities
        # M-step (closed form for hyper-Erlang).
        mass = resp.sum(axis=1)
        weights = mass / x.size
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(mass > 0,
                             np.array(orders) * mass / (resp @ x),
                             rates)
        if ll - prev_ll < tol and it > 1:
            break
        prev_ll = ll
    # Falling out of the loop at max_iter is acceptable: EM increases
    # the likelihood monotonically, so the current iterate is simply the
    # best found within the budget.

    # Drop numerically dead branches and build the PH object.
    keep = [m for m in range(M) if weights[m] > 1e-12]
    if not keep:
        raise ConvergenceError("EM collapsed all branches", iterations=it,
                               residual=float(np.max(weights)))
    w = np.array([weights[m] for m in keep])
    w = w / w.sum()
    parts = [erlang(orders[m], rate=float(rates[m])) for m in keep]
    dist = parts[0] if len(parts) == 1 else mixture(w, parts)
    return HyperErlangFit(
        distribution=dist,
        weights=tuple(float(v) for v in w),
        orders=tuple(orders[m] for m in keep),
        rates=tuple(float(rates[m]) for m in keep),
        log_likelihood=ll,
        iterations=it,
    )


def _candidate_structures(total_order: int) -> list[list[int]]:
    """A small, useful set of branch-order allocations."""
    n = total_order
    cands = [[n]]                          # single Erlang-n
    if n >= 2:
        cands.append([1] * n)              # hyperexponential
        cands.append([n // 2, n - n // 2])  # two balanced branches
    if n >= 3:
        cands.append([1, n - 1])           # short + long branch
    if n >= 4:
        cands.append([1, 2, n - 3])
    # Deduplicate.
    seen, out = set(), []
    for c in cands:
        key = tuple(sorted(c))
        if key not in seen:
            seen.add(key)
            out.append(sorted(c))
    return out


def fit_ph_em(samples, *, total_order: int = 4, max_iter: int = 500,
              tol: float = 1e-9) -> HyperErlangFit:
    """Fit a PH distribution of (at most) ``total_order`` phases to data.

    Runs hyper-Erlang EM over a candidate set of branch structures and
    returns the best by log-likelihood — the standard model-selection
    recipe of the hyper-Erlang fitting literature.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.gamma(4.0, 0.5, size=4000)    # Erlang-4-ish
    >>> fit = fit_ph_em(data, total_order=4)
    >>> bool(abs(fit.distribution.mean - data.mean()) < 0.05)
    True
    """
    if total_order < 1:
        raise ValidationError(f"total_order must be >= 1, got {total_order}")
    best: HyperErlangFit | None = None
    failures: list[ConvergenceError] = []
    for structure in _candidate_structures(total_order):
        try:
            fit = fit_hyper_erlang(samples, structure, max_iter=max_iter,
                                   tol=tol)
        except ConvergenceError as exc:
            failures.append(exc)
            continue
        if best is None or fit.log_likelihood > best.log_likelihood:
            best = fit
    if best is None:
        iterations = sum(e.iterations or 0 for e in failures) or None
        residuals = [e.residual for e in failures if e.residual is not None]
        raise ConvergenceError(
            f"no candidate structure converged "
            f"({len(failures)} structure(s) tried)",
            iterations=iterations,
            residual=min(residuals) if residuals else None)
    return best
