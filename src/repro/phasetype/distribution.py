"""The :class:`PhaseType` distribution class.

Notation follows Section 2.5 of the paper: an order-``m`` PH
distribution ``PH(alpha, S)`` is the absorption time of a CTMC on
states ``{1, ..., m, m+1}`` with generator::

    Q = [ S   s0 ]
        [ 0    0 ]

where ``s0 = -S e >= 0`` is the exit-rate vector.  ``alpha`` is the
initial distribution over transient phases; any deficit
``1 - alpha e`` is an atom at zero.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
from scipy import stats

from repro.errors import NotAPhaseTypeError
from repro.utils.validation import (
    as_float_array,
    check_subgenerator,
    check_subprobability_vector,
)

__all__ = ["PhaseType"]


class PhaseType:
    """An order-``m`` continuous phase-type distribution ``PH(alpha, S)``.

    Parameters
    ----------
    alpha:
        Initial sub-probability vector over the ``m`` transient phases.
        If ``sum(alpha) < 1`` the distribution has an atom of mass
        ``1 - sum(alpha)`` at zero.
    S:
        ``m x m`` sub-generator (non-negative off-diagonals, row sums
        ``<= 0``, invertible).

    Examples
    --------
    >>> from repro.phasetype import erlang
    >>> d = erlang(k=3, mean=1.5)
    >>> round(d.mean, 10)
    1.5
    >>> round(d.scv, 10)   # Erlang-3 has SCV 1/3
    0.3333333333
    """

    __slots__ = ("_alpha", "_S", "__dict__")

    def __init__(self, alpha, S):
        S = check_subgenerator(as_float_array(S, ndim=2, name="S"), name="S")
        alpha = check_subprobability_vector(
            as_float_array(alpha, ndim=1, name="alpha"), name="alpha"
        )
        if alpha.shape[0] != S.shape[0]:
            raise NotAPhaseTypeError(
                f"alpha has {alpha.shape[0]} entries but S is {S.shape[0]}x{S.shape[1]}"
            )
        self._alpha = alpha
        self._S = S

    @classmethod
    def from_trusted(cls, alpha, S) -> "PhaseType":
        """Construct without validation.

        For representations derived internally from already-validated
        distributions — closure operations, rescaling, the effective-
        quantum extraction — where the sub-generator is valid by
        construction.  The caller guarantees ``alpha`` is a
        sub-probability vector and ``S`` an invertible sub-generator;
        nothing here checks either.  External inputs (user code,
        deserialisation) must go through ``PhaseType(alpha, S)``.
        """
        self = object.__new__(cls)
        self._alpha = np.ascontiguousarray(alpha, dtype=np.float64)
        self._S = np.ascontiguousarray(S, dtype=np.float64)
        return self

    # ------------------------------------------------------------------
    # Representation
    # ------------------------------------------------------------------

    @property
    def alpha(self) -> np.ndarray:
        """Initial phase vector (read-only view)."""
        v = self._alpha.view()
        v.flags.writeable = False
        return v

    @property
    def S(self) -> np.ndarray:
        """Sub-generator matrix (read-only view)."""
        m = self._S.view()
        m.flags.writeable = False
        return m

    @property
    def order(self) -> int:
        """Number of transient phases ``m``."""
        return self._S.shape[0]

    @cached_property
    def exit_rates(self) -> np.ndarray:
        """Exit-rate vector ``s0 = -S e`` into the absorbing state."""
        s0 = -self._S.sum(axis=1)
        return np.clip(s0, 0.0, None)

    @cached_property
    def atom_at_zero(self) -> float:
        """Probability mass at zero, ``1 - alpha e``."""
        return max(0.0, 1.0 - float(self._alpha.sum()))

    @cached_property
    def _neg_S_inv(self) -> np.ndarray:
        """``(-S)^{-1}``, the matrix of expected sojourn times."""
        return np.linalg.inv(-self._S)

    def __repr__(self) -> str:
        return (f"PhaseType(order={self.order}, mean={self.mean:.6g}, "
                f"scv={self.scv:.6g})")

    def __eq__(self, other) -> bool:
        """Representation equality (same ``alpha`` and ``S``).

        Two PH objects can describe the same distribution with different
        representations; this compares parameters only.
        """
        if not isinstance(other, PhaseType):
            return NotImplemented
        return (self.order == other.order
                and np.array_equal(self._alpha, other._alpha)
                and np.array_equal(self._S, other._S))

    def __hash__(self):
        h = self.__dict__.get("_cached_hash")
        if h is None:
            h = hash((self.order, self._alpha.tobytes(), self._S.tobytes()))
            self.__dict__["_cached_hash"] = h
        return h

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------

    def moment(self, k: int) -> float:
        """Raw moment ``E[X^k] = k! * alpha (-S)^{-k} e``."""
        if k < 0:
            raise ValueError(f"moment order must be non-negative, got {k}")
        if k == 0:
            return 1.0
        v = self._alpha.copy()
        fact = 1.0
        for i in range(1, k + 1):
            v = v @ self._neg_S_inv
            fact *= i
        return float(fact * v.sum())

    @cached_property
    def mean(self) -> float:
        """Mean ``alpha (-S)^{-1} e``."""
        return self.moment(1)

    @cached_property
    def variance(self) -> float:
        """Variance ``E[X^2] - E[X]^2``."""
        return max(0.0, self.moment(2) - self.mean ** 2)

    @property
    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance))

    @cached_property
    def scv(self) -> float:
        """Squared coefficient of variation ``Var[X] / E[X]^2``.

        The paper's evaluation sweeps are sensitive to the variability
        of the quantum distribution; SCV is the standard one-number
        summary (1 for exponential, ``1/k`` for Erlang-``k``).
        """
        mu = self.mean
        if mu <= 0:
            return 0.0
        return self.variance / mu ** 2

    @property
    def rate(self) -> float:
        """Reciprocal mean ``1 / E[X]`` (service/arrival rate)."""
        return 1.0 / self.mean

    # ------------------------------------------------------------------
    # Distribution functions
    # ------------------------------------------------------------------

    def pdf(self, x) -> np.ndarray | float:
        """Density ``f(x) = alpha exp(S x) s0`` for ``x > 0``.

        At ``x = 0`` the limiting density ``alpha s0`` is returned; the
        atom at zero (if any) is not represented in the density.
        """
        return self._eval(x, lambda E: float(E @ self.exit_rates),
                          at_zero=float(self._alpha @ self.exit_rates),
                          below=0.0)

    def cdf(self, x) -> np.ndarray | float:
        """CDF ``F(x) = 1 - alpha exp(S x) e`` for ``x >= 0``."""
        return self._eval(x, lambda E: 1.0 - float(E.sum()),
                          at_zero=self.atom_at_zero, below=0.0)

    def sf(self, x) -> np.ndarray | float:
        """Survival function ``P(X > x) = alpha exp(S x) e``."""
        return self._eval(x, lambda E: float(E.sum()),
                          at_zero=1.0 - self.atom_at_zero, below=1.0)

    @cached_property
    def _uniformized(self) -> tuple[np.ndarray, float]:
        """Substochastic jump matrix ``P = I + S/theta`` and rate ``theta``."""
        theta = float(np.max(-np.diag(self._S)))
        P = self._S / theta + np.eye(self.order)
        np.clip(P, 0.0, None, out=P)
        return P, theta

    def _front(self, x: float) -> np.ndarray:
        """``alpha exp(S x)`` by uniformization (Poisson-weighted steps).

        scipy's ``expm`` takes an exact-superdiagonal shortcut for
        triangular input that collapses to garbage when two diagonal
        entries differ by ~1 ulp (a hypoexponential with nearly equal
        rates); here every term is a sub-probability vector, so the
        series is unconditionally stable.
        """
        P, theta = self._uniformized
        lam = theta * x
        lo, hi = stats.poisson.interval(1.0 - 1e-14, lam)
        lo, hi = int(max(lo, 0)), int(hi) + 1
        weights = stats.poisson.pmf(np.arange(hi + 1), lam)
        out = np.zeros_like(self._alpha)
        v = self._alpha.copy()
        for k in range(hi + 1):
            if k >= lo:
                out += weights[k] * v
            v = v @ P
        return out

    def _eval(self, x, reduce, at_zero: float, below: float):
        scalar = np.isscalar(x) or np.ndim(x) == 0
        x_arr = np.atleast_1d(np.asarray(x, dtype=np.float64))
        out = np.empty(x_arr.size)
        for i, xi in enumerate(x_arr.ravel()):
            if xi < 0:
                out[i] = below
            elif xi == 0.0:
                out[i] = at_zero
            else:
                out[i] = reduce(self._front(float(xi)))
        if scalar:
            return float(out[0])
        return out.reshape(x_arr.shape)

    def laplace_transform(self, s) -> complex | float:
        """Laplace–Stieltjes transform ``E[e^{-sX}] = alpha (sI - S)^{-1} s0 + atom``."""
        m = self.order
        A = s * np.eye(m) - self._S
        val = self._alpha @ np.linalg.solve(A, self.exit_rates)
        return val + self.atom_at_zero

    def quantile(self, q: float, *, tol: float = 1e-10, max_iter: int = 200) -> float:
        """Numerical quantile under the contract of
        :mod:`repro.metrics.quantiles` (left-continuous generalized
        inverse, evaluated by bracketed bisection on the CDF)."""
        # Imported lazily: repro.metrics re-exports distribution types
        # built on PhaseType, so a module-level import would cycle.
        from repro.metrics.quantiles import cdf_quantile
        return cdf_quantile(self.cdf, q, mean_hint=self.mean,
                            atom_at_zero=self.atom_at_zero,
                            tol=tol, max_iter=max_iter)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw samples by simulating the absorbing chain.

        Vectorized over the batch: all not-yet-absorbed walkers advance
        one phase transition per loop iteration.  For the small orders
        used in this library (``m`` up to a few dozen) this is fast and
        exact.

        Parameters
        ----------
        rng:
            NumPy random generator.
        size:
            Number of samples; ``None`` returns a scalar.
        """
        n = 1 if size is None else int(size)
        if n < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        m = self.order
        total_rates = -np.diag(self._S)
        # Jump chain: P[i, j] = S[i,j]/(-S[i,i]) for j != i,
        # P[i, m] = s0[i]/(-S[i,i]) is absorption.
        jump = np.zeros((m, m + 1))
        for i in range(m):
            if total_rates[i] > 0:
                jump[i, :m] = self._S[i] / total_rates[i]
                jump[i, i] = 0.0
                jump[i, m] = self.exit_rates[i] / total_rates[i]
            else:  # pragma: no cover - excluded by subgenerator check
                jump[i, m] = 1.0
        jump_cum = np.cumsum(jump, axis=1)

        # Initial phases; m means "absorbed immediately" (atom at zero).
        init = np.append(self._alpha, self.atom_at_zero)
        phases = rng.choice(m + 1, size=n, p=init / init.sum())
        times = np.zeros(n)
        active = phases < m
        while np.any(active):
            idx = np.nonzero(active)[0]
            ph = phases[idx]
            times[idx] += rng.exponential(1.0 / total_rates[ph])
            u = rng.random(len(idx))
            nxt = (u[:, None] < jump_cum[ph]).argmax(axis=1)
            phases[idx] = nxt
            active[idx] = nxt < m
        if size is None:
            return float(times[0])
        return times

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def rescaled(self, new_mean: float) -> "PhaseType":
        """Return a copy scaled to have mean ``new_mean``.

        Scaling a PH random variable by ``c > 0`` divides its
        sub-generator by ``c``.
        """
        if new_mean <= 0:
            raise ValueError(f"new_mean must be positive, got {new_mean}")
        c = new_mean / self.mean
        return PhaseType.from_trusted(self._alpha, self._S / c)

    def embedded_generator(self) -> np.ndarray:
        """Full ``(m+1) x (m+1)`` generator including the absorbing state."""
        m = self.order
        Q = np.zeros((m + 1, m + 1))
        Q[:m, :m] = self._S
        Q[:m, m] = self.exit_rates
        return Q

    def is_irreducible_representation(self) -> bool:
        """Check that every phase is reachable from ``alpha`` and reaches absorption.

        Irreducible representations are required by the stability
        analysis of Theorem 4.4 (via Neuts' condition on the generator
        ``A = A0 + A1 + A2``).  A representation failing this check can
        be repaired with :meth:`trimmed`.
        """
        return len(self._reachable_phases()) == self.order

    def _reachable_phases(self) -> list[int]:
        """Phases reachable from the initial vector (BFS over positive rates)."""
        m = self.order
        seen = [i for i in range(m) if self._alpha[i] > 0]
        frontier = list(seen)
        seen_set = set(seen)
        while frontier:
            i = frontier.pop()
            for j in range(m):
                if j != i and self._S[i, j] > 0 and j not in seen_set:
                    seen_set.add(j)
                    frontier.append(j)
        return sorted(seen_set)

    def trimmed(self) -> "PhaseType":
        """Remove phases unreachable from ``alpha`` (same distribution)."""
        keep = self._reachable_phases()
        if len(keep) == self.order:
            return self
        if not keep:
            raise NotAPhaseTypeError("no reachable phases; alpha is all zero")
        idx = np.asarray(keep)
        return PhaseType.from_trusted(self._alpha[idx], self._S[np.ix_(idx, idx)])
