"""Equilibrium (stationary-excess) distributions of PH variables.

If ``X ~ PH(alpha, S)`` with mean ``m``, the *equilibrium distribution*
``X_e`` has density ``sf_X(x) / m`` — the distribution of the residual
life of ``X`` observed at a random time in a renewal process of ``X``'s
(the inspection paradox, made precise).  For PH inputs the result is
again PH with the *same* sub-generator and the initial vector
``alpha_e = alpha (-S)^{-1} / m`` (the normalized expected sojourn
times).

This is what a Poisson arrival sees of the remaining quantum/overhead
in steady state (PASTA), and the exact ingredient if one extends the
simulator's empty-system fast-forward to non-exponential overheads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.phasetype.distribution import PhaseType

__all__ = ["equilibrium", "residual_moment"]


def equilibrium(dist: PhaseType) -> PhaseType:
    """The stationary-excess distribution of a PH variable.

    Examples
    --------
    >>> from repro.phasetype import exponential, erlang
    >>> equilibrium(exponential(2.0)).mean    # memoryless: unchanged
    0.5
    >>> e = erlang(2, mean=1.0)
    >>> round(equilibrium(e).mean, 10)        # m2/(2 m1) = 0.75
    0.75
    """
    m = dist.mean
    if m <= 0:
        raise ValidationError("equilibrium distribution needs a positive mean")
    S = np.asarray(dist.S)
    alpha_e = (np.asarray(dist.alpha) @ np.linalg.inv(-S)) / m
    return PhaseType.from_trusted(alpha_e, S)


def residual_moment(dist: PhaseType, k: int) -> float:
    """Raw moment of the equilibrium distribution.

    Identity: ``E[X_e^k] = E[X^{k+1}] / ((k+1) E[X])``.
    """
    if k < 0:
        raise ValidationError(f"moment order must be non-negative, got {k}")
    return dist.moment(k + 1) / ((k + 1) * dist.mean)
