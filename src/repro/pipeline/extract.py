"""Vectorized effective-quantum extraction (Theorem 4.3).

:func:`repro.core.vacation.effective_quantum` is the reference
implementation and documents the construction; this module computes
the same absorbing PH with the per-iteration overhead stripped out.
It profiles as the fixed point's dominant stage, and almost all of its
cost was index bookkeeping rather than arithmetic:

* the service/waiting index sets of every level are pure functions of
  the :class:`~repro.core.statespace.ClassStateSpace` — an
  :class:`ExtractionWorkspace` computes them once per space (states are
  ordered ``(a, v, k)`` with ``k`` fastest, so they are arange
  patterns, not state-enumeration loops);
* every level above the boundary shares the repeating blocks, so the
  retained/absorbing slices of ``A0``/``A1``/``A2`` are sliced once
  and placed ``K - c`` times;
* the truncation search walks ``pi_b R^n`` incrementally instead of
  calling ``tail_probability`` (a fresh ``matrix_power``) per level,
  and the entry flows of the repeating levels reuse one sliced flow
  matrix.

Results agree with the reference to floating-point noise (asserted by
``tests/pipeline/test_extract.py``); they are not bit-identical
because sums associate differently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.statespace import ClassStateSpace
from repro.errors import ValidationError
from repro.kernels.sparse import row_sums, sub_dense
from repro.phasetype import PhaseType
from repro.qbd.stationary import QBDStationaryDistribution
from repro.qbd.structure import QBDProcess

__all__ = ["ExtractionWorkspace", "extract_effective_quantum"]


@dataclass(frozen=True)
class _LevelIndices:
    """Service/waiting state indices of one level, in block order."""

    svc: np.ndarray
    wait: np.ndarray


@dataclass(frozen=True)
class _ExtractionPlan:
    """Space-dependent (but solution-independent) extraction layout."""

    lvl_start: int
    boundary: tuple[_LevelIndices, ...]  # levels lvl_start..c
    repeating: _LevelIndices             # levels > c


class ExtractionWorkspace:
    """Caches one :class:`_ExtractionPlan` per state space.

    Spaces are value-hashable frozen dataclasses, so the cache survives
    the per-iteration re-creation of equal spaces; it only repopulates
    when the vacation *order* changes.
    """

    def __init__(self):
        self._plans: dict[ClassStateSpace, _ExtractionPlan] = {}

    def plan(self, space: ClassStateSpace) -> _ExtractionPlan:
        plan = self._plans.get(space)
        if plan is None:
            plan = self._build(space)
            self._plans[space] = plan
        return plan

    @staticmethod
    def _indices(space: ClassStateSpace, level: int) -> _LevelIndices:
        phases = space.cycle_phases_at(level)
        nk = len(phases)
        n_quantum = sum(1 for k in phases if space.is_quantum_phase(k))
        blocks = space.level_dim(level) // nk
        base = np.arange(blocks, dtype=np.intp)[:, None] * nk
        svc = (base + np.arange(n_quantum, dtype=np.intp)).ravel()
        wait = (base + np.arange(n_quantum, nk, dtype=np.intp)).ravel()
        return _LevelIndices(svc=svc, wait=wait)

    def _build(self, space: ClassStateSpace) -> _ExtractionPlan:
        c = space.boundary_levels
        lvl_start = 0 if space.policy == "idle" else 1
        boundary = tuple(self._indices(space, lvl)
                         for lvl in range(lvl_start, c + 1))
        return _ExtractionPlan(lvl_start=lvl_start, boundary=boundary,
                               repeating=self._indices(space, c + 1))


def _off_diag(M: np.ndarray) -> np.ndarray:
    out = M.copy()
    np.fill_diagonal(out, 0.0)
    return out


def extract_effective_quantum(space: ClassStateSpace, process: QBDProcess,
                              solution: QBDStationaryDistribution,
                              vacation: PhaseType,
                              *, truncation_mass: float = 1e-9,
                              max_levels: int = 400,
                              workspace: ExtractionWorkspace | None = None,
                              ) -> PhaseType:
    """Fast equivalent of :func:`repro.core.vacation.effective_quantum`.

    Same construction, same truncation rule, same entry vector; see the
    reference implementation for the semantics.  ``workspace`` carries
    the per-space index plans across fixed-point iterations.
    """
    if workspace is None:
        workspace = ExtractionWorkspace()
    plan = workspace.plan(space)
    c = space.boundary_levels
    lvl_start = plan.lvl_start

    # ---- truncation level: incremental tail walk ------------------------
    R = solution.R
    pib = solution.boundary_pi[solution.boundary_levels]
    e = np.ones(R.shape[0])
    w = np.linalg.solve(np.eye(R.shape[0]) - R, e)
    K = c + 1
    vec = pib @ R @ R          # tail(K) = pi_b R^{K-b+1} (I-R)^{-1} e, b = c
    while K < max_levels and float(vec @ w) > truncation_mass:
        K += 1
        vec = vec @ R

    def indices(lvl: int) -> _LevelIndices:
        if lvl > c:
            return plan.repeating
        return plan.boundary[lvl - lvl_start]

    offsets: dict[int, int] = {}
    pos = 0
    for lvl in range(lvl_start, K + 1):
        offsets[lvl] = pos
        pos += len(indices(lvl).svc)
    order = pos
    if order == 0:
        raise ValidationError("no service states found; is m_quantum zero?")

    T = np.zeros((order, order))
    absorb = np.zeros(order)

    # ---- boundary levels: per-level slices ------------------------------
    rep = plan.repeating
    rs = rep.svc
    A0, A1, A2 = process.A0, process.A1, process.A2
    for lvl in range(lvl_start, c + 1):
        idx = indices(lvl)
        rows = idx.svc
        base = offsets[lvl]
        local = process.block(lvl, lvl)
        T[base:base + len(rows), base:base + len(rows)] += \
            _off_diag(sub_dense(local, rows, rows))
        if idx.wait.size:
            absorb[base:base + len(rows)] += \
                sub_dense(local, rows, idx.wait).sum(axis=1)
        if lvl < K:
            upb = process.block(lvl, lvl + 1)
            up_rows = indices(lvl + 1).svc
            T[base:base + len(rows),
              offsets[lvl + 1]:offsets[lvl + 1] + len(up_rows)] += \
                sub_dense(upb, rows, up_rows)
        if lvl > lvl_start:
            dnb = process.block(lvl, lvl - 1)
            dn = indices(lvl - 1)
            T[base:base + len(rows),
              offsets[lvl - 1]:offsets[lvl - 1] + len(dn.svc)] += \
                sub_dense(dnb, rows, dn.svc)
            if dn.wait.size:
                absorb[base:base + len(rows)] += \
                    sub_dense(dnb, rows, dn.wait).sum(axis=1)
        elif lvl == 1 and lvl_start == 1:
            # Switch policy: the whole down block from level 1 lands in
            # level-0 waiting states — pure absorption.
            dnb = process.block(1, 0)
            absorb[base:base + len(rows)] += row_sums(dnb)[rows]

    # ---- repeating levels: slice once, place K - c times ----------------
    if K > c:
        nrep = len(rs)
        rep_local = _off_diag(A1[np.ix_(rs, rs)])
        rep_local_abs = A1[np.ix_(rs, rep.wait)].sum(axis=1) \
            if rep.wait.size else np.zeros(nrep)
        rep_up = A0[np.ix_(rs, rs)]
        rep_down = A2[np.ix_(rs, rs)]
        rep_down_abs = A2[np.ix_(rs, rep.wait)].sum(axis=1) \
            if rep.wait.size else np.zeros(nrep)
        for lvl in range(c + 1, K + 1):
            base = offsets[lvl]
            sl = slice(base, base + nrep)
            T[sl, sl] += rep_local
            absorb[sl] += rep_local_abs
            if lvl < K:
                T[sl, offsets[lvl + 1]:offsets[lvl + 1] + nrep] += rep_up
            # Down target: level c shares the repeating phase layout,
            # so one slice serves every repeating level.
            T[sl, offsets[lvl - 1]:offsets[lvl - 1] + nrep] += rep_down
            absorb[sl] += rep_down_abs

    np.fill_diagonal(T, 0.0)
    T[np.diag_indices(order)] = -(T.sum(axis=1) + absorb)

    # ---- initial vector xi ----------------------------------------------
    xi = np.zeros(order)
    for lvl in range(lvl_start, c + 1):
        idx = indices(lvl)
        if idx.wait.size == 0:
            continue
        pi = solution.level(lvl)
        local = process.block(lvl, lvl)
        flow = pi[idx.wait] @ sub_dense(local, idx.wait, idx.svc)
        xi[offsets[lvl]:offsets[lvl] + len(idx.svc)] += flow
    if K > c and rep.wait.size:
        W = A1[np.ix_(rep.wait, rs)]
        pi = pib.copy()
        for lvl in range(c + 1, K + 1):
            pi = pi @ R
            xi[offsets[lvl]:offsets[lvl] + len(rs)] += pi[rep.wait] @ W

    # Skipped quanta: vacation completions while the system is empty.
    atom_flow = 0.0
    if lvl_start == 1:
        pi0 = solution.level(0)
        v0 = vacation.exit_rates
        atom_flow = float((pi0.reshape(-1, space.m_vacation) @ v0).sum())

    total = xi.sum() + atom_flow
    if total <= 0:
        raise ValidationError(
            "no probability flow into quantum starts; the chain never serves"
        )
    # T is a sub-generator by construction (diagonal set from the
    # row sums plus absorption); skip the O(n^3) validation.
    return PhaseType.from_trusted(xi / total, T)
