"""Content-keyed cache of solved QBD artifacts.

The fixed point re-solves each class's QBD once per iteration, and a
sweep runs one fixed point per grid value.  Whenever two sub-solves see
*bit-identical* generator blocks — the optimistic-bootstrap restart
revisiting the heavy-traffic blocks, ``solve()`` followed by
``solve_heavy_traffic()`` on the same model, duplicated grid values —
the second solve is pure waste.  :class:`ArtifactCache` keys a solved
:class:`~repro.qbd.stationary.QBDStationaryDistribution` by a SHA-256
hash of the exact block bytes plus everything else that affects the
result (method, tolerance, resilience policy), so a hit is guaranteed
to return what the fresh solve would have produced.

The cache is deliberately *not* shared across processes: a parallel
sweep's workers each build their own, which keeps a parallel run
bit-identical to a serial one (identical blocks solve to identical
results either way).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.kernels.sparse import block_bytes
from repro.obs import metrics
from repro.qbd.stationary import QBDStationaryDistribution
from repro.qbd.structure import QBDProcess

__all__ = ["ArtifactCache"]


class ArtifactCache:
    """Bounded LRU cache of stationary solutions, keyed by content.

    Parameters
    ----------
    max_entries:
        Entries beyond this evict least-recently-used ones.  Each entry
        holds a boundary solve plus ``R`` for one class chain — small
        for the paper's configurations, so the default is generous.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, QBDStationaryDistribution] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(process: QBDProcess, *, method: str, tol: float,
            policy: object | None, backend: str | None = None) -> str:
        """Content key: exact bytes of every block + solve options.

        Two processes with the same key are bit-identical, so serving
        the cached solution is indistinguishable from re-solving.
        Blocks may be dense or CSR (:func:`repro.kernels.block_bytes`
        keys the two representations differently — the sparse and dense
        solve paths are numerically close but not bit-identical), and
        ``backend`` is part of the key for the same reason.
        """
        h = hashlib.sha256()
        for blk in (process.A0, process.A1, process.A2):
            for part in block_bytes(blk):
                h.update(part)
        for row in process.boundary:
            for blk in row:
                if blk is None:
                    h.update(b"-")
                else:
                    for part in block_bytes(blk):
                        h.update(part)
        h.update(repr((method, tol, policy, backend)).encode())
        return h.hexdigest()

    def get(self, key: str) -> QBDStationaryDistribution | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            metrics.inc("cache.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        metrics.inc("cache.hits")
        return entry

    def put(self, key: str, value: QBDStationaryDistribution) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            metrics.inc("cache.evictions")

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size.

        Surfaced as ``FixedPointResult.cache_stats`` /
        ``SolvedModel.cache_stats`` after every solve.
        """
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries)}
