"""The staged per-class solve: assemble -> stability -> R -> boundary -> extract.

Each stage reads and writes the :class:`~repro.pipeline.context.SolveContext`;
:func:`solve_all` strings them together with exactly the legacy
``_solve_all`` semantics (same fault-injection sites, same saturation
handling, same return shape) so the fixed-point driver stays a thin
loop over iterations.

The stages fold in the pipeline's three per-iteration wins:

* Kronecker assembly with a reused workspace
  (:func:`repro.pipeline.assembly.build_class_qbd_fast`);
* warm-started ``R`` solves seeded with the class's previous iterate;
* a content-keyed cache of full stationary solutions serving
  bit-identical re-solves (bootstrap restarts, repeated grid points).

``opts.reuse_artifacts=False`` routes assembly and extraction through
the reference implementations, and ``opts.warm_start=False`` drops the
seeding — together they reproduce the legacy solve path exactly.

Every stage runs under an observability span (``stage.assemble``,
``stage.stability``, ``stage.rsolve``, ``stage.boundary``,
``stage.extract``, ``stage.reduce``; see :mod:`repro.obs`) tagged with
the class index.  The spans feed ``ctx.timings`` from the same clock
window they trace, so ``FixedPointResult.timings`` is a view over the
trace — and with tracing disabled they degrade to the bare wall-clock
accumulation.
"""

from __future__ import annotations

from repro.core.generator import build_class_qbd
from repro.core.vacation import effective_quantum, reduce_order
from repro.errors import UnstableSystemError
from repro.obs.trace import span
from repro.phasetype import PhaseType
from repro.pipeline.assembly import build_class_qbd_fast
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.context import SolveContext
from repro.pipeline.extract import extract_effective_quantum
from repro.qbd.boundary import solve_boundary
from repro.qbd.rmatrix import solve_R
from repro.qbd.stability import drift
from repro.qbd.stationary import QBDStationaryDistribution
from repro.resilience.fallback import resilient_solve_R
from repro.resilience.faults import maybe_fault

__all__ = ["assemble_class", "solve_class", "extract_class", "solve_all"]

#: Tolerance of the per-class ``R`` solves (the ``solve_qbd`` default).
_R_TOL = 1e-12


def assemble_class(ctx: SolveContext, p: int, vacation: PhaseType) -> None:
    """Build class ``p``'s QBD for the current vacation.

    Capacity ``c_p`` and the arrival/service/quantum distributions come
    from the scheduling policy's cycle view, not the raw config — the
    generator builds whatever cycle the policy granted.
    """
    view = ctx.views[p]
    art = ctx.classes[p]
    with span("stage.assemble", timings=ctx.timings, stage="assemble",
              klass=p):
        if getattr(ctx.opts, "reuse_artifacts", True):
            process, space, art.assembly = build_class_qbd_fast(
                view.partitions, view.arrival, view.service,
                view.quantum, vacation, policy=ctx.config.empty_queue_policy,
                workspace=art.assembly,
                backend=getattr(ctx.opts, "backend", None),
            )
        else:
            process, space = build_class_qbd(
                view.partitions, view.arrival, view.service,
                view.quantum, vacation, policy=ctx.config.empty_queue_policy,
            )
    art.process, art.space, art.vacation = process, space, vacation


def solve_class(ctx: SolveContext, p: int) -> QBDStationaryDistribution:
    """Stability test, ``R`` solve and boundary solve for class ``p``.

    Semantically :func:`repro.qbd.stationary.solve_qbd` (same fault
    site, same instability message, same resilience plumbing) with the
    stages timed separately, the solve served from ``ctx.cache`` when
    the blocks are bit-identical to an earlier one, and the ``R``
    iteration seeded with the class's previous iterate.
    """
    opts = ctx.opts
    art = ctx.classes[p]
    process = art.process
    maybe_fault("qbd.solve")
    with span("stage.stability", timings=ctx.timings, stage="stability",
              klass=p):
        report = drift(process.A0, process.A1, process.A2)
    if not report.stable:
        raise UnstableSystemError(
            f"QBD is not positive recurrent: mean up-rate {report.up:.6g} >= "
            f"mean down-rate {report.down:.6g} "
            f"(rho={report.traffic_intensity:.4g})",
            drift=report.drift,
        )
    backend = getattr(opts, "backend", None)
    key = ArtifactCache.key(process, method=opts.rmatrix_method, tol=_R_TOL,
                            policy=opts.resilience, backend=backend)
    cached = ctx.cache.get(key)
    if cached is not None:
        art.solution, art.R = cached, cached.R
        return cached
    R0 = art.R if getattr(opts, "warm_start", True) else None
    with span("stage.rsolve", timings=ctx.timings, stage="rsolve",
              klass=p):
        if opts.resilience is None:
            R = solve_R(process.A0, process.A1, process.A2,
                        method=opts.rmatrix_method, tol=_R_TOL, R0=R0,
                        backend=backend)
            solve_report = None
        else:
            R, solve_report = resilient_solve_R(
                process.A0, process.A1, process.A2,
                method=opts.rmatrix_method, tol=_R_TOL,
                policy=opts.resilience, R0=R0, backend=backend)
    with span("stage.boundary", timings=ctx.timings, stage="boundary",
              klass=p):
        pi = solve_boundary(process, R, backend=backend)
    sol = QBDStationaryDistribution(boundary_pi=tuple(pi), R=R,
                                    drift_report=report,
                                    solve_report=solve_report)
    ctx.cache.put(key, sol)
    art.solution, art.R = sol, R
    return sol


def extract_class(ctx: SolveContext, p: int) -> PhaseType:
    """Effective quantum of (stable, solved) class ``p``, order-reduced."""
    opts = ctx.opts
    art = ctx.classes[p]
    with span("stage.extract", timings=ctx.timings, stage="extract",
              klass=p):
        if getattr(opts, "reuse_artifacts", True):
            raw = extract_effective_quantum(
                art.space, art.process, art.solution, art.vacation,
                truncation_mass=opts.truncation_mass,
                max_levels=opts.max_truncation_levels,
                workspace=art.extraction,
            )
        else:
            raw = effective_quantum(
                art.space, art.process, art.solution, art.vacation,
                truncation_mass=opts.truncation_mass,
                max_levels=opts.max_truncation_levels,
            )
    with span("stage.reduce", timings=ctx.timings, stage="reduce",
              klass=p):
        return reduce_order(raw, opts.reduction,
                            backend=getattr(opts, "backend", None))


def solve_all(ctx: SolveContext, vacations: list[PhaseType]):
    """Solve every class; saturated classes get ``None`` solutions.

    Drop-in for the legacy ``fixed_point._solve_all`` — same return
    shape, same ``fixed_point.class_solve`` fault site inside the
    saturation guard.  A saturated class keeps its previous ``R`` as
    the warm seed for whenever it turns stable again.
    """
    spaces, processes, solutions, saturated = [], [], [], []
    for p in range(ctx.config.num_classes):
        art = ctx.classes[p]
        assemble_class(ctx, p, vacations[p])
        try:
            maybe_fault("fixed_point.class_solve", key=p)
            sol = solve_class(ctx, p)
            sat = False
        except UnstableSystemError:
            sol = None
            sat = True
            art.solution = None
        art.saturated = sat
        spaces.append(art.space)
        processes.append(art.process)
        solutions.append(sol)
        saturated.append(sat)
    return spaces, processes, solutions, saturated
