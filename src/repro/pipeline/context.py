"""Shared state of the staged fixed-point solve.

The legacy driver threaded ``(spaces, processes, solutions, saturated)``
tuples through each iteration and rebuilt everything else from scratch.
The pipeline instead keeps one :class:`ClassArtifacts` per job class —
the QBD, its solution, the last ``R`` matrix (the warm-start seed for
the next iteration) and the reusable assembly/extraction workspaces —
plus a solved-artifact cache and per-stage wall-clock accounting, all
bundled in a :class:`SolveContext` created once per fixed-point run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SystemConfig
from repro.core.statespace import ClassStateSpace
from repro.obs.trace import StageTimings
from repro.phasetype import PhaseType
from repro.pipeline.assembly import AssemblyWorkspace
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.extract import ExtractionWorkspace
from repro.policy import ClassCycleView, resolve_policy
from repro.qbd.stationary import QBDStationaryDistribution
from repro.qbd.structure import QBDProcess

# ``StageTimings`` moved to :mod:`repro.obs.trace` with the
# observability layer (the pipeline stages now feed it through obs
# spans); re-exported here for compatibility.
__all__ = ["ClassArtifacts", "SolveContext", "StageTimings"]


@dataclass
class ClassArtifacts:
    """Everything the pipeline knows about one job class.

    ``R`` survives saturation episodes and vacation updates — the
    previous iterate is a good Newton seed even after the blocks move —
    and the workspaces survive everything except a change in the
    distributions they were built from.
    """

    index: int
    assembly: AssemblyWorkspace | None = None
    extraction: ExtractionWorkspace = field(default_factory=ExtractionWorkspace)
    space: ClassStateSpace | None = None
    process: QBDProcess | None = None
    vacation: PhaseType | None = None
    solution: QBDStationaryDistribution | None = None
    R: np.ndarray | None = None
    saturated: bool = False


@dataclass
class SolveContext:
    """One fixed-point run's worth of shared pipeline state."""

    config: SystemConfig
    opts: "FixedPointOptions"  # noqa: F821 - import cycle; typing only
    classes: list[ClassArtifacts]
    cache: ArtifactCache
    #: Per-class cycle views granted by the scheduling policy; every
    #: stage consumes these instead of the raw config (for the default
    #: round-robin they alias the config's own distributions).
    views: tuple[ClassCycleView, ...] = ()
    timings: StageTimings = field(default_factory=StageTimings)

    @classmethod
    def create(cls, config: SystemConfig, opts,
               cache: ArtifactCache | None = None) -> "SolveContext":
        """Build a fresh context (one per ``run_fixed_point`` call).

        ``cache`` lets a caller — e.g. a model solving several related
        systems — share solved artifacts across runs; by default each
        run gets its own.
        """
        if cache is None:
            cache = getattr(opts, "cache", None)
        if cache is None:  # NB: an empty ArtifactCache is falsy
            cache = ArtifactCache()
        policy = resolve_policy(getattr(opts, "policy", None))
        return cls(config=config, opts=opts,
                   classes=[ClassArtifacts(index=p)
                            for p in range(config.num_classes)],
                   cache=cache,
                   views=policy.views(config))
