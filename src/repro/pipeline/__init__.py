"""Staged solver pipeline: reusable artifacts for the fixed point.

The fixed-point iteration of Section 4.3 re-solves every class's QBD
once per iteration, and the figure sweeps run one fixed point per grid
value.  This package makes the repeated work explicit and reusable:

* :mod:`repro.pipeline.assembly` — Kronecker-product generator
  assembly with a per-class workspace of vacation-independent factors;
* :mod:`repro.pipeline.extract` — vectorized effective-quantum
  extraction with cached per-space index plans;
* :mod:`repro.pipeline.cache` — content-keyed cache of solved
  stationary distributions;
* :mod:`repro.pipeline.context` — the per-run
  :class:`~repro.pipeline.context.SolveContext` carrying class
  artifacts (including warm-start ``R`` seeds) and stage timings;
* :mod:`repro.pipeline.stages` — the assemble / stability / R-solve /
  boundary / extract stages the fixed-point driver composes.

The reference implementations in :mod:`repro.core` remain the
semantic ground truth; ``FixedPointOptions(reuse_artifacts=False,
warm_start=False)`` routes the driver back through them.
"""

from repro.pipeline.assembly import AssemblyWorkspace, build_class_qbd_fast
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.context import ClassArtifacts, SolveContext, StageTimings
from repro.pipeline.extract import ExtractionWorkspace, extract_effective_quantum
from repro.pipeline.stages import (
    assemble_class,
    extract_class,
    solve_all,
    solve_class,
)

__all__ = [
    "ArtifactCache",
    "AssemblyWorkspace",
    "ClassArtifacts",
    "ExtractionWorkspace",
    "SolveContext",
    "StageTimings",
    "assemble_class",
    "build_class_qbd_fast",
    "extract_class",
    "extract_effective_quantum",
    "solve_all",
    "solve_class",
]
