"""Kronecker-product assembly of the per-class QBD blocks.

:func:`repro.core.generator.build_class_qbd` enumerates every state and
every transition in Python — clear, and the reference the tests pin —
but the fixed point rebuilds each class's generator once per iteration,
so state enumeration dominated the assembly cost.  This module builds
the *same* blocks from their tensor structure instead.

States within a level are ordered ``(a, v, k)`` with ``k`` fastest
(see :class:`repro.core.statespace.ClassStateSpace`), so every block
factors as ``kron(arrival part, kron(composition part, cycle part))``:

* the composition-space operators (service-phase jumps, completions
  with and without refill, arrival entry) do not depend on the
  vacation at all — they are built once per class in an
  :class:`AssemblyWorkspace` and reused across every fixed-point
  iteration;
* the cycle-phase operators (quantum/vacation jumps, expiry,
  switch-on-empty redirection) are small dense matrices rebuilt from
  the current vacation in microseconds.

:func:`build_class_qbd_fast` is an exact drop-in for
``build_class_qbd`` (the equality is asserted block-for-block by
``tests/pipeline/test_assembly.py``), minus the ``with_labels`` escape
hatch, which stays on the reference builder.

With ``backend="sparse"`` (or ``"auto"`` past the size threshold),
boundary blocks above :data:`repro.kernels.backend.SPARSE_MIN_SIZE`
are assembled *directly in CSR* — ``scipy.sparse.kron`` over CSR
factors — so no dense ``dim x dim`` intermediate ever exists for the
large levels.  The repeating blocks ``A0/A1/A2`` stay dense
regardless: every ``R``-matrix algorithm is dense ``d x d`` BLAS and
the repeating phase dimension is small by construction.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from repro.core.generator import _with_diagonal, class_state_space
from repro.core.statespace import ClassStateSpace
from repro.errors import ValidationError
from repro.kernels import is_sparse, kron2, row_sums, select_backend
from repro.phasetype import PhaseType
from repro.qbd.structure import QBDProcess
from repro.utils.combinatorics import composition_index_map, compositions

__all__ = ["AssemblyWorkspace", "build_class_qbd_fast"]


def _eye(n: int, sparse: bool):
    return _sp.eye_array(n, format="csr") if sparse else np.eye(n)


def _with_diagonal_any(local, other_blocks):
    """:func:`repro.core.generator._with_diagonal` for either
    representation of ``local`` (neighbours may be mixed too)."""
    total = row_sums(local)
    for blk in other_blocks:
        if blk is not None:
            total = total + row_sums(blk)
    if is_sparse(local):
        return _sp.csr_array(local - _sp.diags_array(total))
    out = local.copy()
    r = np.arange(out.shape[0])
    out[r, r] -= total
    return out


def _off_diag(M: np.ndarray) -> np.ndarray:
    out = np.array(M, dtype=np.float64, copy=True)
    np.fill_diagonal(out, 0.0)
    return out


class AssemblyWorkspace:
    """Vacation-independent generator factors for one class.

    Everything here depends only on ``(partitions, arrival, service,
    policy)`` — fixed for the life of a fixed-point run — so one
    workspace amortizes the composition-space enumeration over all
    iterations.
    """

    def __init__(self, partitions: int, arrival: PhaseType,
                 service: PhaseType, policy: str):
        self.partitions = int(partitions)
        self.policy = policy
        self.arrival = arrival
        self.service = service
        c = self.partitions
        mB = service.order
        SB = np.asarray(service.S, dtype=np.float64)
        aB = np.asarray(service.alpha, dtype=np.float64)
        sB0 = np.asarray(service.exit_rates, dtype=np.float64)

        self.SA_off = _off_diag(np.asarray(arrival.S))
        self.Aup = np.outer(np.asarray(arrival.exit_rates, dtype=np.float64),
                            np.asarray(arrival.alpha, dtype=np.float64))

        # Composition-space operators per level.  in_service(i) =
        # min(i, c); levels c..c+1 share the full-occupancy vectors.
        def comps(s: int):
            return compositions(s, mB)

        def cmap(s: int):
            return composition_index_map(s, mB)

        self.nv = [len(comps(min(i, c))) for i in range(c + 2)]

        # Service-phase jumps within a level: v -> v - e_n + e_n2 at
        # rate v[n] SB[n, n2].
        self.Sjump: list[np.ndarray] = []
        for i in range(c + 2):
            s = min(i, c)
            vecs, vmap = comps(s), cmap(s)
            M = np.zeros((len(vecs), len(vecs)))
            for vi, v in enumerate(vecs):
                for n, count in enumerate(v):
                    if count == 0:
                        continue
                    for n2 in range(mB):
                        if n2 == n or SB[n, n2] <= 0:
                            continue
                        w = list(v)
                        w[n] -= 1
                        w[n2] += 1
                        M[vi, vmap[tuple(w)]] += count * SB[n, n2]
            self.Sjump.append(M)

        # Service completions, level i -> i - 1 (i = 1..c): the freed
        # partition stays empty, v -> v - e_n at rate v[n] sB0[n].
        self.Dplain: dict[int, np.ndarray] = {}
        for i in range(1, c + 1):
            vecs, vmap = comps(i), cmap(i - 1)
            M = np.zeros((len(vecs), len(vmap)))
            for vi, v in enumerate(vecs):
                for n, count in enumerate(v):
                    if count == 0 or sB0[n] <= 0:
                        continue
                    w = list(v)
                    w[n] -= 1
                    M[vi, vmap[tuple(w)]] += count * sB0[n]
            self.Dplain[i] = M

        # Service completions with refill (levels > c): the head-of-
        # queue job takes the slot, v -> v - e_n + e_n2 at rate
        # v[n] sB0[n] aB[n2].
        vecs, vmap = comps(c), cmap(c)
        M = np.zeros((len(vecs), len(vecs)))
        for vi, v in enumerate(vecs):
            for n, count in enumerate(v):
                if count == 0 or sB0[n] <= 0:
                    continue
                for n2 in np.nonzero(aB)[0]:
                    w = list(v)
                    w[n] -= 1
                    w[int(n2)] += 1
                    M[vi, vmap[tuple(w)]] += count * sB0[n] * aB[n2]
        self.Dref = M

        # Arrival entry, level i -> i + 1 (i < c): the arriving job
        # takes a partition with initial phase beta_B.
        self.Uent: dict[int, np.ndarray] = {}
        for i in range(c):
            vecs, vmap = comps(i), cmap(i + 1)
            M = np.zeros((len(vecs), len(vmap)))
            for vi, v in enumerate(vecs):
                for n in np.nonzero(aB)[0]:
                    w = list(v)
                    w[int(n)] += 1
                    M[vi, vmap[tuple(w)]] += aB[n]
            self.Uent[i] = M

        # Cycle-size-keyed Kronecker products that do not depend on the
        # quantum/vacation *values* — only on their orders.  The fixed
        # point rebuilds the generator every iteration with a new
        # vacation of (almost always) the same order, so these blocks
        # are identical call to call; caching them skips the dominant
        # kron2 work.  Keyed by (m_quantum, m_vacation, switch, csr
        # pattern); values are reused as-is, so the assembled blocks
        # stay bitwise equal to a cold build.
        self._static: dict[tuple, dict] = {}

    def matches(self, partitions: int, arrival: PhaseType,
                service: PhaseType, policy: str) -> bool:
        return (self.partitions == partitions and self.policy == policy
                and self.arrival == arrival and self.service == service)


def build_class_qbd_fast(partitions: int, arrival: PhaseType,
                         service: PhaseType, quantum: PhaseType,
                         vacation: PhaseType, *, policy: str = "switch",
                         workspace: AssemblyWorkspace | None = None,
                         backend: str | None = None,
                         ) -> tuple[QBDProcess, ClassStateSpace, AssemblyWorkspace]:
    """Assemble one class's QBD from its Kronecker factors.

    Produces blocks equal to
    :func:`repro.core.generator.build_class_qbd` (same state order,
    same rates) at a fraction of the cost.  Returns the workspace used
    so callers can pass it back on the next iteration; a stale or
    ``None`` workspace is rebuilt transparently.  ``backend`` selects
    the representation of large *boundary* blocks (see module
    docstring); the workspace itself is representation-independent.
    """
    for what, dist in (("arrival", arrival), ("service", service),
                       ("quantum", quantum), ("vacation", vacation)):
        if dist.atom_at_zero > 1e-12:
            raise ValidationError(
                f"{what} distribution has an atom at zero "
                f"({dist.atom_at_zero:.3g}); the chain would have instantaneous "
                "transitions"
            )
    if workspace is None or not workspace.matches(partitions, arrival,
                                                  service, policy):
        workspace = AssemblyWorkspace(partitions, arrival, service, policy)
    ws = workspace
    space = class_state_space(partitions, arrival, service, quantum,
                              vacation, policy)
    c = space.boundary_levels
    mA = space.m_arrival
    M = space.m_quantum
    N = space.m_vacation
    nk = M + N
    switch = space.policy == "switch"

    SG_off = _off_diag(np.asarray(quantum.S))
    sG0 = np.asarray(quantum.exit_rates, dtype=np.float64)
    bG = np.asarray(quantum.alpha, dtype=np.float64)
    V_off = _off_diag(np.asarray(vacation.S))
    zeta = np.asarray(vacation.alpha, dtype=np.float64)
    v0 = np.asarray(vacation.exit_rates, dtype=np.float64)

    # Cycle-phase operators (all small dense matrices).
    Kfull = np.zeros((nk, nk))
    Kfull[:M, :M] = SG_off                      # quantum-phase jumps
    Kfull[:M, M:] += np.outer(sG0, zeta)        # quantum expiry
    Kfull[M:, M:] += V_off                      # vacation-phase jumps
    Kfull[M:, :M] += np.outer(v0, bG)           # vacation expiry
    Eq = np.zeros((nk, nk))                     # "during the quantum" mask
    Eq[:M, :M] = np.eye(M)
    if switch:
        K0 = V_off + np.outer(v0, zeta)         # skipped quantum at level 0
        np.fill_diagonal(K0, 0.0)               # restart self-loops dropped
        E0up = np.zeros((N, nk))                # level-0 phases embed at >=1
        E0up[:, M:] = np.eye(N)
        Tq0 = np.zeros((nk, N))                 # last departure -> vacation
        Tq0[:M, :] = zeta[None, :]

    def nk_at(i: int) -> int:
        return N if (i == 0 and switch) else nk

    def dim_at(i: int) -> int:
        return mA * ws.nv[i] * nk_at(i)

    # Representation per boundary level: CSR for levels past the
    # selector's threshold, dense below it.  The repeating levels
    # (c, c+1) are forced dense — A0/A1/A2 feed the dense R solvers.
    csr_level = [select_backend(backend, dim_at(i), site="assembly") == "sparse"
                 for i in range(c + 2)]
    csr_level[c] = csr_level[c + 1] = False

    I_mA = np.eye(mA)
    I_nk = np.eye(nk)

    # Off-diagonal blocks, mirroring generator._BlockBuilder.  A block
    # between two levels goes CSR only when both endpoints do (a mixed
    # pair is small on one side anyway).  Everything that depends on
    # the quantum/vacation only through their *orders* — the up blocks,
    # the non-switch down blocks, and the static local addends — comes
    # from the workspace cache (see ``AssemblyWorkspace._static``);
    # only the value-carrying pieces are rebuilt per call.
    sa_jumps = bool(ws.SA_off.any())
    ckey = (M, N, switch, tuple(csr_level))
    static = ws._static.get(ckey)
    if static is None:
        ups_s: list[np.ndarray] = []
        for i in range(c + 1):
            f = csr_level[i] and csr_level[i + 1]
            Vup = ws.Uent[i] if i < c else np.eye(ws.nv[i])
            Kup = E0up if (i == 0 and switch) else I_nk
            ups_s.append(kron2(ws.Aup, kron2(Vup, Kup, sparse=f), sparse=f))
        downs_s: dict[int, np.ndarray] = {}
        for i in range(1, c + 2):
            if i == 1 and switch:
                continue  # Tq0 carries vacation values; rebuilt per call
            f = csr_level[i] and csr_level[i - 1]
            Dv = ws.Dref if i > c else ws.Dplain[i]
            downs_s[i] = kron2(I_mA, kron2(Dv, Eq, sparse=f), sparse=f)
        sjump_s: dict[int, np.ndarray] = {}
        sa_s: dict[int, np.ndarray] = {}
        for i in range(c + 2):
            f = csr_level[i]
            nv = ws.nv[i]
            nki = nk_at(i)
            if not (i == 0 and switch) and min(i, c) > 0 \
                    and bool(ws.Sjump[i].any()):
                sjump_s[i] = kron2(I_mA, kron2(ws.Sjump[i], Eq, sparse=f),
                                   sparse=f)
            if sa_jumps:
                sa_s[i] = kron2(ws.SA_off, _eye(nv * nki, f), sparse=f)
        static = {"ups": ups_s, "downs": downs_s, "sjump": sjump_s,
                  "sa": sa_s}
        ws._static[ckey] = static

    ups = static["ups"]

    downs: list[np.ndarray | None] = [None]
    for i in range(1, c + 2):
        if i == 1 and switch:
            f = csr_level[1] and csr_level[0]
            Dv = ws.Dref if 1 > c else ws.Dplain[1]
            downs.append(kron2(I_mA, kron2(Dv, Tq0, sparse=f), sparse=f))
        else:
            downs.append(static["downs"][i])

    locals_: list[np.ndarray] = []
    for i in range(c + 2):
        f = csr_level[i]
        nv = ws.nv[i]
        Ki = K0 if (i == 0 and switch) else Kfull
        L = kron2(I_mA, kron2(_eye(nv, f), Ki, sparse=f), sparse=f)
        if i in static["sjump"]:
            L = L + static["sjump"][i]
        if sa_jumps:
            L = L + static["sa"][i]
        locals_.append(L)

    # Boundary/diagonal assembly, identical to build_class_qbd.
    A0 = ups[c]
    A1 = locals_[c + 1]
    A2 = downs[c + 1]
    A1 = _with_diagonal(A1, [A0, A2])

    boundary: list[list[np.ndarray | None]] = [
        [None] * (c + 1) for _ in range(c + 1)
    ]
    for i in range(c + 1):
        out_blocks = []
        if i > 0:
            boundary[i][i - 1] = downs[i]
            out_blocks.append(downs[i])
        up_blk = ups[i] if i < c else A0
        out_blocks.append(up_blk)
        if i < c:
            boundary[i][i + 1] = ups[i]
        boundary[i][i] = _with_diagonal_any(locals_[i], out_blocks)

    # Diagonals were derived as negative row sums above, so the
    # generator property holds by construction; skip the re-check.
    process = QBDProcess.from_trusted_blocks(boundary, A0, A1, A2)
    return process, space, workspace
