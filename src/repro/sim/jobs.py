"""Job bookkeeping for the simulators.

A job carries its total service requirement (sampled from the class's
PH service distribution on creation) and the work already received.
Preemption is work-conserving: pausing a job freezes its remaining
work, which is exactly the semantics of the analytic model (service PH
phases only advance while the class holds the processors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["Job"]


@dataclass
class Job:
    """One job's lifecycle state.

    Attributes
    ----------
    job_id:
        Unique per simulation.
    class_id:
        The job class ``p``.
    arrival_time:
        When the job entered the system.
    service_requirement:
        Total work, in machine-time units on a ``g(p)`` partition.
    """

    job_id: int
    class_id: int
    arrival_time: float
    service_requirement: float
    work_done: float = 0.0
    #: When the job last (re)started executing; None while paused/queued.
    running_since: float | None = field(default=None, repr=False)
    #: Set when the job completes.
    departure_time: float | None = None

    @property
    def remaining(self) -> float:
        """Work still owed (valid only while paused)."""
        return max(0.0, self.service_requirement - self.work_done)

    def start(self, now: float) -> float:
        """Mark the job running; return its completion time if undisturbed."""
        if self.running_since is not None:
            raise SimulationError(f"job {self.job_id} started twice")
        self.running_since = now
        return now + self.remaining

    def pause(self, now: float) -> None:
        """Bank the work done since :meth:`start`."""
        if self.running_since is None:
            raise SimulationError(f"job {self.job_id} paused while not running")
        self.work_done += now - self.running_since
        self.running_since = None

    def finish(self, now: float) -> float:
        """Mark completion; returns the response time."""
        if self.running_since is not None:
            self.work_done += now - self.running_since
            self.running_since = None
        self.departure_time = now
        return now - self.arrival_time

    @property
    def response_time(self) -> float:
        if self.departure_time is None:
            raise SimulationError(f"job {self.job_id} has not departed")
        return self.departure_time - self.arrival_time
