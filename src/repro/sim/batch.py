"""Batch arrivals — the extension the paper sketches in Section 3.

"Our mathematical analysis is easily extended to handle batch arrivals
and/or departures as long as the batch sizes are bounded."  The
analytic extension changes the QBD into a banded (M/G/1-type) process;
this module provides the *simulation* side: each arrival epoch brings
a random, bounded number of jobs, so batch effects on gang scheduling
can be measured directly and the single-arrival model's adequacy
assessed (see ``tests/sim/test_batch.py``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import SystemConfig
from repro.errors import ValidationError
from repro.sim.gang import GangSimulation
from repro.sim.jobs import Job

__all__ = ["BatchArrivalGangSimulation"]


class BatchArrivalGangSimulation(GangSimulation):
    """Gang scheduling with batched job arrivals.

    Parameters
    ----------
    config:
        The usual system description; its per-class arrival PH now
        governs the *epochs* at which batches arrive.
    batch_pmfs:
        One probability vector per class: ``batch_pmfs[p][k-1]`` is the
        probability an epoch brings ``k`` jobs (sizes ``1..len(pmf)``).
        Mean offered load per class becomes
        ``lambda_p * E[batch] / mu_p`` accordingly.
    """

    def __init__(self, config: SystemConfig,
                 batch_pmfs: Sequence[Sequence[float]], *,
                 seed: int | None = None, warmup: float = 0.0):
        super().__init__(config, seed=seed, warmup=warmup)
        if len(batch_pmfs) != config.num_classes:
            raise ValidationError(
                f"{len(batch_pmfs)} batch pmfs for {config.num_classes} classes")
        self._batch_pmfs = []
        for p, pmf in enumerate(batch_pmfs):
            arr = np.asarray(pmf, dtype=np.float64)
            if arr.ndim != 1 or arr.size == 0 or np.any(arr < 0) \
                    or abs(arr.sum() - 1.0) > 1e-9:
                raise ValidationError(
                    f"batch pmf for class {p} must be a probability vector")
            self._batch_pmfs.append(arr / arr.sum())

    def mean_batch_size(self, p: int) -> float:
        pmf = self._batch_pmfs[p]
        return float(np.dot(pmf, np.arange(1, pmf.size + 1)))

    def offered_load(self, p: int) -> float:
        """``rho_p`` including the batch factor."""
        cls = self.config.classes[p]
        return (cls.arrival_rate * self.mean_batch_size(p)
                / (self.config.partitions(p) * cls.service_rate))

    def _on_arrival(self, p: int) -> None:
        cls = self.config.classes[p]
        now = self.sim.now
        pmf = self._batch_pmfs[p]
        size = 1 + int(self._rng(f"batch.{p}").choice(pmf.size, p=pmf))
        for _ in range(size):
            self._job_counter += 1
            job = Job(
                job_id=self._job_counter, class_id=p, arrival_time=now,
                service_requirement=self._sample(cls.service, f"service.{p}"),
            )
            self.stats[p].on_arrival(now)
            if len(self._active[p]) < self.config.partitions(p):
                self._active[p].append(job)
                if self._current_class == p:
                    self._start_job(job)
            else:
                self._queue[p].append(job)
        self.sim.schedule(self._sample(cls.arrival, f"arrival.{p}"),
                          self._on_arrival, p)
        if self._parked is not None:
            self._unpark()
