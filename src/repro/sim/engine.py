"""Event-driven simulation core.

A minimal, fast engine: a binary heap of timestamped events with a
monotone sequence number for deterministic FIFO tie-breaking, lazy
cancellation, and a run loop.  Schedulers are written as plain
callback methods — no coroutines, no framework.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.  Obtained from :meth:`Simulator.schedule`.

    Cancellation is lazy: :meth:`cancel` marks the event and the run
    loop skips it when popped (O(1) cancel, no heap surgery).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will not fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6g}, {name}, {state})"


class Simulator:
    """Discrete-event simulation kernel.

    Examples
    --------
    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(2.0, hits.append, "b")
    >>> _ = sim.schedule(1.0, hits.append, "a")
    >>> sim.run(until=10.0)
    >>> hits
    ['a', 'b']
    >>> sim.now
    10.0
    """

    def __init__(self):
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        #: Number of events actually dispatched (cancelled ones excluded).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        ev = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, ev)
        return ev

    def peek(self) -> float | None:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` when none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self.events_processed += 1
            ev.callback(*ev.args)
            return True
        return False

    def run(self, until: float) -> None:
        """Run events in order until the clock reaches ``until``.

        The clock is advanced to exactly ``until`` at the end, so
        time-average statistics can integrate to the horizon.
        """
        if until < self._now:
            raise SimulationError(f"horizon {until} is before now={self._now}")
        while True:
            nxt = self.peek()
            if nxt is None or nxt > until:
                break
            self.step()
        self._now = until
