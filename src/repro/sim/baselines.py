"""Baseline schedulers the paper's introduction contrasts with.

* :class:`TimeSharingSimulation` — *pure time-sharing*: "all processors
  work on a single job for a specified amount of time".  Round-robin
  over one global FCFS job list with the whole machine dedicated to the
  running job; a job needing only ``g(p)`` processors wastes the other
  ``P - g(p)`` — the resource-underutilization problem the paper cites.
* :class:`SpaceSharingSimulation` — *pure space-sharing*: jobs are
  granted their ``g(p)``-processor partitions FCFS from the shared pool
  and run to completion (no time-slicing, no preemption, no switch
  overheads).  Interactive jobs can be stuck behind long ones — the
  responsiveness problem gang scheduling fixes.

Both consume the same :class:`~repro.core.config.SystemConfig` and emit
the same :class:`~repro.sim.stats.SimulationReport`, so they are
directly comparable with :class:`~repro.sim.gang.GangSimulation` in the
baseline bench.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import SystemConfig
from repro.errors import SimulationError
from repro.phasetype.random import sampler_for
from repro.sim.engine import Event, Simulator
from repro.sim.jobs import Job
from repro.sim.stats import ClassStats, SimulationReport
from repro.utils.rng import StreamFactory

__all__ = ["TimeSharingSimulation", "SpaceSharingSimulation"]


class _BaseSimulation:
    """Shared arrival plumbing for the baseline simulators."""

    def __init__(self, config: SystemConfig, *, seed: int | None = None,
                 warmup: float = 0.0):
        self.config = config
        self.warmup = warmup
        self.sim = Simulator()
        self._streams = StreamFactory(seed)
        self.stats = [ClassStats(warmup) for _ in range(config.num_classes)]
        self._job_counter = 0
        self._draw_cache: dict[str, tuple] = {}

    def _sample(self, dist, stream: str) -> float:
        entry = self._draw_cache.get(stream)
        if entry is None:
            entry = (sampler_for(dist), self._streams.get(stream))
            self._draw_cache[stream] = entry
        return entry[0].draw(entry[1])

    def _schedule_arrivals(self) -> None:
        for p, cls in enumerate(self.config.classes):
            self.sim.schedule(self._sample(cls.arrival, f"arrival.{p}"),
                              self._on_arrival, p)

    def _new_job(self, p: int) -> Job:
        cls = self.config.classes[p]
        self._job_counter += 1
        job = Job(
            job_id=self._job_counter, class_id=p,
            arrival_time=self.sim.now,
            service_requirement=self._sample(cls.service, f"service.{p}"),
        )
        self.stats[p].on_arrival(self.sim.now)
        self.sim.schedule(self._sample(cls.arrival, f"arrival.{p}"),
                          self._on_arrival, p)
        return job

    def run(self, horizon: float) -> SimulationReport:
        if horizon <= self.warmup:
            raise SimulationError(
                f"horizon {horizon} must exceed warmup {self.warmup}"
            )
        self._schedule_arrivals()
        self.sim.run(until=horizon)
        return SimulationReport.from_stats(
            self.stats, horizon, self.warmup, self.sim.events_processed,
        )

    # subclasses implement:
    def _on_arrival(self, p: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class TimeSharingSimulation(_BaseSimulation):
    """Whole-machine round-robin with a fixed quantum.

    Parameters
    ----------
    quantum:
        Round-robin slice length; defaults to the mean of class 0's
        quantum distribution.
    overhead:
        Fixed context-switch cost paid whenever the running job
        changes; defaults to the mean of class 0's overhead.
    """

    def __init__(self, config: SystemConfig, *, seed: int | None = None,
                 warmup: float = 0.0, quantum: float | None = None,
                 overhead: float | None = None):
        super().__init__(config, seed=seed, warmup=warmup)
        self.quantum = quantum if quantum is not None \
            else config.classes[0].quantum.mean
        self.overhead = overhead if overhead is not None \
            else config.classes[0].overhead.mean
        self._ring: deque[Job] = deque()
        self._running: Job | None = None
        self._slice_end: Event | None = None
        self._completion: Event | None = None

    def _on_arrival(self, p: int) -> None:
        job = self._new_job(p)
        self._ring.append(job)
        if self._running is None and len(self._ring) == 1:
            # Machine idle: dispatch immediately (no switch cost from idle).
            self.sim.schedule(0.0, self._dispatch)

    def _dispatch(self) -> None:
        if self._running is not None or not self._ring:
            return
        job = self._ring.popleft()
        self._running = job
        done_at = job.start(self.sim.now)
        self._completion = self.sim.schedule_at(done_at, self._finish, job)
        self._slice_end = self.sim.schedule(self.quantum, self._preempt, job)

    def _finish(self, job: Job) -> None:
        if self._slice_end is not None:
            self._slice_end.cancel()
            self._slice_end = None
        self._completion = None
        self._running = None
        resp = job.finish(self.sim.now)
        self.stats[job.class_id].on_departure(self.sim.now, resp, job.arrival_time)
        if self._ring:
            self.sim.schedule(self.overhead, self._dispatch)

    def _preempt(self, job: Job) -> None:
        self._slice_end = None
        if self._running is not job:
            return
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        job.pause(self.sim.now)
        self._running = None
        self._ring.append(job)
        self.sim.schedule(self.overhead, self._dispatch)


class SpaceSharingSimulation(_BaseSimulation):
    """FCFS run-to-completion with dynamic partition allocation.

    A single FCFS queue over all classes; the head job starts as soon
    as ``g(p)`` processors are free (strict FCFS — the head blocks
    later jobs even if they would fit, the standard conservative
    variant).  No preemption, no overheads.
    """

    def __init__(self, config: SystemConfig, *, seed: int | None = None,
                 warmup: float = 0.0):
        super().__init__(config, seed=seed, warmup=warmup)
        self._free = config.processors
        self._fifo: deque[Job] = deque()

    def _on_arrival(self, p: int) -> None:
        job = self._new_job(p)
        self._fifo.append(job)
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        while self._fifo:
            head = self._fifo[0]
            need = self.config.classes[head.class_id].partition_size
            if need > self._free:
                break
            self._fifo.popleft()
            self._free -= need
            done_at = head.start(self.sim.now)
            self.sim.schedule_at(done_at, self._finish, head)

    def _finish(self, job: Job) -> None:
        self._free += self.config.classes[job.class_id].partition_size
        resp = job.finish(self.sim.now)
        self.stats[job.class_id].on_departure(self.sim.now, resp, job.arrival_time)
        self._try_dispatch()
