"""Single-class vacation-server simulation (the decomposed model).

The analytic method models class ``p`` in isolation: a ``c_p``-server
queue whose servers are granted in quanta ``~ G_p`` separated by
i.i.d. vacations ``~ F_p`` (Section 4.1's alternating process
``{T_{p,n}, Z_{p,n}}``).  This simulator realizes *exactly that
process* — vacations drawn independently from a supplied PH
distribution — so it must agree with the per-class QBD solution to
within simulation noise at *any* load.

This isolates approximation from implementation: a gap between the
full :class:`~repro.sim.gang.GangSimulation` and the analytic model
measures the paper's independence assumption, while a gap between
*this* simulator and the model would be a bug.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.phasetype import PhaseType
from repro.phasetype.random import sampler_for
from repro.sim.engine import Event, Simulator
from repro.sim.jobs import Job
from repro.sim.stats import ClassStats, SimulationReport
from repro.utils.rng import StreamFactory

__all__ = ["VacationServerSimulation"]


class VacationServerSimulation:
    """One class served in quanta separated by i.i.d. PH vacations.

    Parameters
    ----------
    servers:
        ``c_p``: partitions available during a quantum.
    arrival, service, quantum, vacation:
        The four PH distributions of the decomposed per-class model
        (``vacation`` is ``F_p``).
    policy:
        ``"switch"`` (vacation starts the moment the system empties,
        and an empty system at quantum-start skips straight into the
        next vacation) or ``"idle"``.
    """

    def __init__(self, servers: int, arrival: PhaseType, service: PhaseType,
                 quantum: PhaseType, vacation: PhaseType, *,
                 policy: str = "switch", seed: int | None = None,
                 warmup: float = 0.0):
        if servers < 1:
            raise SimulationError(f"servers must be >= 1, got {servers}")
        self.servers = servers
        self.arrival = arrival
        self.service = service
        self.quantum = quantum
        self.vacation = vacation
        self.policy = policy
        self.warmup = warmup
        self.sim = Simulator()
        self._streams = StreamFactory(seed)
        self.stats = ClassStats(warmup)
        self._active: list[Job] = []
        self._queue: deque[Job] = deque()
        self._completions: dict[int, Event] = {}
        self._quantum_end: Event | None = None
        self._serving = False
        self._jobs = 0
        self._draw_cache: dict[str, tuple] = {}
        # Empty-system fast-forward (see GangSimulation): an empty
        # system under the switch policy spins through zero-length
        # quanta and vacations; with an exponential vacation the spin is
        # memoryless, so we park and resume with one fresh vacation
        # residual on the next arrival.  Exact, and avoids millions of
        # no-op events when the vacation is short.
        self._can_park = policy == "switch" and vacation.order == 1
        self._parked = False

    def _sample(self, dist: PhaseType, stream: str) -> float:
        entry = self._draw_cache.get(stream)
        if entry is None:
            entry = (sampler_for(dist), self._streams.get(stream))
            self._draw_cache[stream] = entry
        return entry[0].draw(entry[1])

    def run(self, horizon: float) -> SimulationReport:
        if horizon <= self.warmup:
            raise SimulationError(
                f"horizon {horizon} must exceed warmup {self.warmup}"
            )
        self.sim.schedule(self._sample(self.arrival, "arrival"),
                          self._on_arrival)
        self.sim.schedule(0.0, self._begin_quantum)
        self.sim.run(until=horizon)
        return SimulationReport.from_stats(
            [self.stats], horizon, self.warmup, self.sim.events_processed,
        )

    # -- events ----------------------------------------------------------

    def _on_arrival(self) -> None:
        self._jobs += 1
        job = Job(job_id=self._jobs, class_id=0, arrival_time=self.sim.now,
                  service_requirement=self._sample(self.service, "service"))
        self.stats.on_arrival(self.sim.now)
        if len(self._active) < self.servers:
            self._active.append(job)
            if self._serving:
                self._start(job)
        else:
            self._queue.append(job)
        self.sim.schedule(self._sample(self.arrival, "arrival"),
                          self._on_arrival)
        if self._parked:
            # Resume mid-vacation: the residual is a fresh sample by
            # memorylessness (exponential vacations only).
            self._parked = False
            self.sim.schedule(self._sample(self.vacation, "vacation"),
                              self._begin_quantum)

    def _start(self, job: Job) -> None:
        self._completions[job.job_id] = self.sim.schedule_at(
            job.start(self.sim.now), self._on_completion, job
        )

    def _on_completion(self, job: Job) -> None:
        self._completions.pop(job.job_id, None)
        resp = job.finish(self.sim.now)
        self._active.remove(job)
        self.stats.on_departure(self.sim.now, resp, job.arrival_time)
        if self._queue and len(self._active) < self.servers:
            nxt = self._queue.popleft()
            self._active.append(nxt)
            if self._serving:
                self._start(nxt)
        elif self._serving and not self._active and self.policy == "switch":
            if self._quantum_end is not None:
                self._quantum_end.cancel()
                self._quantum_end = None
            self._serving = False
            self._begin_vacation()

    def _begin_quantum(self) -> None:
        if not self._active and self.policy == "switch":
            # Empty at the opportunity: skip straight into the vacation.
            if self._can_park:
                self._parked = True
                return
            self._begin_vacation()
            return
        self._serving = True
        self._quantum_end = self.sim.schedule(
            self._sample(self.quantum, "quantum"), self._on_quantum_expiry
        )
        for job in self._active:
            self._start(job)

    def _on_quantum_expiry(self) -> None:
        self._quantum_end = None
        for job in self._active:
            if job.running_since is not None:
                job.pause(self.sim.now)
            ev = self._completions.pop(job.job_id, None)
            if ev is not None:
                ev.cancel()
        self._serving = False
        self._begin_vacation()

    def _begin_vacation(self) -> None:
        self.sim.schedule(self._sample(self.vacation, "vacation"),
                          self._begin_quantum)
