"""Online statistics collection for the simulators.

Per class we track the time-average number in system (by integrating
the jump process ``N_p(t)``), response-time tallies, and counts.  All
accumulators honor a warmup time: contributions before it are
discarded, so steady-state estimates are not polluted by the empty
initial state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.metrics.quantiles import empirical_quantile, empirical_tail
from repro.metrics.selectors import parse_metrics

__all__ = ["ClassStats", "SimulationReport"]


class ClassStats:
    """Accumulators for one job class."""

    def __init__(self, warmup: float = 0.0):
        self.warmup = warmup
        self._count = 0                 # current number in system
        self._last_change = warmup      # last time _count changed (clamped)
        self._area = 0.0                # integral of N(t) dt past warmup
        self._resp_sum = 0.0
        self._resp_sq_sum = 0.0
        self._completed = 0
        self._arrived = 0
        self._resp_samples: list[float] = []

    # -- event hooks -----------------------------------------------------

    def _advance(self, now: float) -> None:
        if now > self._last_change:
            start = max(self._last_change, self.warmup)
            if now > start:
                self._area += self._count * (now - start)
            self._last_change = now

    def on_arrival(self, now: float) -> None:
        self._advance(now)
        self._count += 1
        if now >= self.warmup:
            self._arrived += 1

    def on_departure(self, now: float, response_time: float,
                     arrival_time: float) -> None:
        self._advance(now)
        self._count -= 1
        if arrival_time >= self.warmup:
            self._completed += 1
            self._resp_sum += response_time
            self._resp_sq_sum += response_time * response_time
            self._resp_samples.append(response_time)

    def finalize(self, horizon: float) -> None:
        """Close the integration window at the simulation horizon."""
        self._advance(horizon)
        self._horizon = horizon

    # -- estimates --------------------------------------------------------

    def observation_time(self, horizon: float) -> float:
        return max(0.0, horizon - self.warmup)

    def mean_jobs(self, horizon: float) -> float:
        """Time-average ``N_p`` over ``[warmup, horizon]``."""
        T = self.observation_time(horizon)
        return self._area / T if T > 0 else float("nan")

    @property
    def mean_response_time(self) -> float:
        return self._resp_sum / self._completed if self._completed else float("nan")

    @property
    def response_time_std(self) -> float:
        n = self._completed
        if n < 2:
            return float("nan")
        var = (self._resp_sq_sum - self._resp_sum ** 2 / n) / (n - 1)
        return math.sqrt(max(0.0, var))

    @property
    def completed(self) -> int:
        return self._completed

    @property
    def arrived(self) -> int:
        return self._arrived

    @property
    def in_system(self) -> int:
        return self._count

    def throughput(self, horizon: float) -> float:
        T = self.observation_time(horizon)
        return self._completed / T if T > 0 else float("nan")

    def response_quantile(self, q: float) -> float:
        """Empirical response-time quantile (shared contract of
        :mod:`repro.metrics.quantiles`); ``nan`` with no samples."""
        return empirical_quantile(self._resp_samples, q)

    def response_tail(self, t: float) -> float:
        """Empirical ``P{T > t}``; ``nan`` with no samples."""
        return empirical_tail(self._resp_samples, t)

    def response_metric(self, selector: str) -> float:
        """Evaluate one metric selector on the recorded sojourns."""
        (sel,) = parse_metrics((selector,))
        if sel.kind == "mean":
            return self.mean_response_time
        if sel.kind == "quantile":
            return self.response_quantile(sel.value)
        return self.response_tail(sel.value)


@dataclass(frozen=True)
class SimulationReport:
    """Frozen summary of one simulation run.

    ``mean_jobs`` / ``mean_response_time`` etc. are tuples indexed by
    class.  ``littles_law_gap`` reports the per-class relative gap
    between the time-average ``N_p`` and ``lambda_hat_p * T_hat_p``
    computed from the run's own arrival rate estimate — a built-in
    sanity check that should shrink with the horizon (Theorem 2.1).
    """

    horizon: float
    warmup: float
    events: int
    mean_jobs: tuple[float, ...]
    mean_response_time: tuple[float, ...]
    response_time_std: tuple[float, ...]
    #: Per class: (median, p95, p99) of the response time.
    response_quantiles: tuple[tuple[float, float, float], ...]
    throughput: tuple[float, ...]
    completed: tuple[int, ...]
    littles_law_gap: tuple[float, ...]
    extras: dict = field(default_factory=dict, compare=False)

    @property
    def total_mean_jobs(self) -> float:
        return sum(self.mean_jobs)

    @classmethod
    def from_stats(cls, stats: list[ClassStats], horizon: float, warmup: float,
                   events: int, extras: dict | None = None) -> "SimulationReport":
        mean_jobs, resp, resp_std, thr, comp, gaps = [], [], [], [], [], []
        quantiles = []
        for st in stats:
            st.finalize(horizon)
            n_bar = st.mean_jobs(horizon)
            t_bar = st.mean_response_time
            lam_hat = st.arrived / st.observation_time(horizon) \
                if st.observation_time(horizon) > 0 else float("nan")
            mean_jobs.append(n_bar)
            resp.append(t_bar)
            resp_std.append(st.response_time_std)
            quantiles.append((st.response_quantile(0.5),
                              st.response_quantile(0.95),
                              st.response_quantile(0.99)))
            thr.append(st.throughput(horizon))
            comp.append(st.completed)
            if n_bar > 0 and t_bar == t_bar and lam_hat == lam_hat:
                gaps.append(abs(n_bar - lam_hat * t_bar) / n_bar)
            else:
                gaps.append(float("nan"))
        return cls(
            horizon=horizon, warmup=warmup, events=events,
            mean_jobs=tuple(mean_jobs),
            mean_response_time=tuple(resp),
            response_time_std=tuple(resp_std),
            response_quantiles=tuple(quantiles),
            throughput=tuple(thr),
            completed=tuple(comp),
            littles_law_gap=tuple(gaps),
            extras=extras or {},
        )

    def describe(self, names: tuple[str, ...] | None = None) -> str:
        lines = [f"simulation: horizon={self.horizon:g} warmup={self.warmup:g} "
                 f"events={self.events}"]
        for p, n in enumerate(self.mean_jobs):
            nm = names[p] if names else f"class{p}"
            q50, q95, q99 = self.response_quantiles[p]
            lines.append(
                f"  {nm}: N={n:.4f}  T={self.mean_response_time[p]:.4f}  "
                f"T(p95)={q95:.3f}  thr={self.throughput[p]:.4f}  "
                f"done={self.completed[p]}  "
                f"LL-gap={self.littles_law_gap[p]:.2%}"
            )
        return "\n".join(lines)
