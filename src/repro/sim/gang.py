"""Discrete-event simulation of the paper's gang scheduling policy.

Policy (Section 3.1):

* The machine cycles through the classes: quantum for class ``p``
  (length sampled from ``G_p``), then the context-switch overhead
  ``C_p``, then class ``p+1 mod L``.
* During class ``p``'s quantum the first ``c_p = P/g(p)`` class-``p``
  jobs (FCFS) each run on their own partition; a completed job's
  partition goes to the head of the queue.
* An arriving job takes a free partition slot immediately (even during
  another class's turn — it will start computing at the next quantum),
  otherwise it waits in the FCFS queue.
* If the class-``p`` system empties during its quantum, the machine
  context-switches immediately (``empty_queue_policy="switch"``); under
  ``"idle"`` it idles until the quantum expires.
* A class whose system is empty when its turn comes has its quantum
  skipped (zero length); the overhead ``C_p`` is still paid, matching
  the analytic model, whose vacations always contain every overhead.

Preemption is work-conserving: a preempted job resumes with exactly
its remaining work (the analytic model's PH service phases freeze
during vacations — same semantics in distribution).
"""

from __future__ import annotations

from collections import deque

from repro.core.config import SystemConfig
from repro.errors import SimulationError
from repro.phasetype.random import sampler_for
from repro.policy import resolve_policy
from repro.sim.engine import Event, Simulator
from repro.sim.jobs import Job
from repro.sim.stats import ClassStats, SimulationReport
from repro.utils.rng import StreamFactory

__all__ = ["GangSimulation"]


class GangSimulation:
    """Simulate a :class:`~repro.core.config.SystemConfig` gang schedule.

    Parameters
    ----------
    config:
        The same configuration object the analytic model consumes.
    seed:
        Root seed; every stochastic component gets an independent
        stream, so runs are reproducible and policies comparable.
    warmup:
        Statistics before this time are discarded.
    policy:
        Scheduling policy shaping the cycle (``None`` = the paper's
        round-robin).  The simulator samples services and quanta from
        the policy's per-class views and walks the policy's turn
        order, mirroring the analytic side exactly.

    Examples
    --------
    >>> from repro.core import ClassConfig, SystemConfig
    >>> cfg = SystemConfig(processors=4, classes=(
    ...     ClassConfig.markovian(2, arrival_rate=0.5, service_rate=1.0,
    ...                           quantum_mean=2.0, overhead_mean=0.01),))
    >>> report = GangSimulation(cfg, seed=1, warmup=100.0).run(5000.0)
    >>> report.mean_jobs[0] > 0
    True
    """

    def __init__(self, config: SystemConfig, *, seed: int | None = None,
                 warmup: float = 0.0, policy=None):
        self.config = config
        self.warmup = warmup
        self.policy = resolve_policy(policy)
        self.views = self.policy.views(config)
        self.sim = Simulator()
        self._streams = StreamFactory(seed)
        L = config.num_classes
        #: Per-class capacity c_p, as granted by the policy.
        self._caps = [v.partitions for v in self.views]
        #: The cycle's turn order and each class's position in it.
        self._order = self.policy.turn_order(config)
        self._pos = {p: i for i, p in enumerate(self._order)}
        self.stats = [ClassStats(warmup) for _ in range(L)]
        # Per-class job pools.
        self._active: list[list[Job]] = [[] for _ in range(L)]   # hold a partition
        self._queue: list[deque[Job]] = [deque() for _ in range(L)]
        self._completion_events: dict[int, Event] = {}
        self._quantum_end_event: Event | None = None
        self._current_class: int | None = None   # class in quantum, else None
        self._job_counter = 0
        self._draw_cache: dict[str, tuple] = {}
        # Empty-system fast-forward ("parking"): when every queue is
        # empty the cycle degenerates to a deterministic spin through
        # skipped quanta and overheads.  With exponential overheads the
        # spin is a memoryless renewal process, so instead of simulating
        # thousands of no-op events we park the scheduler and, on the
        # next arrival, resume from the spin's stationary position
        # (overhead class chosen length-biased by mean, residual fresh
        # by memorylessness).  This is an exact transformation; for
        # non-exponential overheads it is disabled and the spin is
        # simulated literally.
        self._can_park = all(c.overhead.order == 1 for c in config.classes)
        self._parked: int | None = None
        self._park_time = 0.0
        rates = [c.overhead_rate for c in config.classes]
        # With equal exponential overhead rates the spin is a Poisson
        # process and the fast-forward collapses to one Poisson draw.
        self._park_uniform_rate = rates[0] if (
            self._can_park and max(rates) - min(rates) < 1e-12 * rates[0]
        ) else None
        self.park_events = 0
        # Instrumentation for the ablation benches.
        self.quanta_started = [0] * L
        self.quanta_skipped = [0] * L
        self.early_switches = [0] * L

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _rng(self, name: str):
        return self._streams.get(name)

    def _turn_at(self, p: int, k: int) -> int:
        """The class whose turn comes ``k`` turns after class ``p``'s."""
        return self._order[(self._pos[p] + k) % len(self._order)]

    def _sample(self, dist, stream: str) -> float:
        # Hot path: resolve (sampler, rng) once per stream name.
        entry = self._draw_cache.get(stream)
        if entry is None:
            entry = (sampler_for(dist), self._streams.get(stream))
            self._draw_cache[stream] = entry
        return entry[0].draw(entry[1])

    def _start(self) -> None:
        for p, cls in enumerate(self.config.classes):
            delay = self._sample(cls.arrival, f"arrival.{p}")
            self.sim.schedule(delay, self._on_arrival, p)
        self.sim.schedule(0.0, self._begin_class_turn, self._order[0])

    def run(self, horizon: float) -> SimulationReport:
        """Run to ``horizon`` and return the statistics report."""
        if horizon <= self.warmup:
            raise SimulationError(
                f"horizon {horizon} must exceed warmup {self.warmup}"
            )
        self._start()
        self.sim.run(until=horizon)
        return SimulationReport.from_stats(
            self.stats, horizon, self.warmup, self.sim.events_processed,
            extras={
                "quanta_started": tuple(self.quanta_started),
                "quanta_skipped": tuple(self.quanta_skipped),
                "early_switches": tuple(self.early_switches),
            },
        )

    # ------------------------------------------------------------------
    # Workload events
    # ------------------------------------------------------------------

    def _on_arrival(self, p: int) -> None:
        cls = self.config.classes[p]
        now = self.sim.now
        self._job_counter += 1
        job = Job(
            job_id=self._job_counter, class_id=p, arrival_time=now,
            service_requirement=self._sample(self.views[p].service,
                                             f"service.{p}"),
        )
        self.stats[p].on_arrival(now)
        if len(self._active[p]) < self._caps[p]:
            self._active[p].append(job)
            if self._current_class == p:
                self._start_job(job)
        else:
            self._queue[p].append(job)
        # Renewal: next arrival.
        self.sim.schedule(self._sample(cls.arrival, f"arrival.{p}"),
                          self._on_arrival, p)
        if self._parked is not None:
            self._unpark()

    def _start_job(self, job: Job) -> None:
        done_at = job.start(self.sim.now)
        self._completion_events[job.job_id] = self.sim.schedule_at(
            done_at, self._on_completion, job
        )

    def _pause_job(self, job: Job) -> None:
        job.pause(self.sim.now)
        ev = self._completion_events.pop(job.job_id, None)
        if ev is not None:
            ev.cancel()

    def _on_completion(self, job: Job) -> None:
        p = job.class_id
        now = self.sim.now
        self._completion_events.pop(job.job_id, None)
        resp = job.finish(now)
        self._active[p].remove(job)
        self.stats[p].on_departure(now, resp, job.arrival_time)
        # Freed partition goes to the head of the queue.  (The slot-count
        # guard is an invariant here but matters for the lending variant,
        # where borrowed capacity can inflate the active set.)
        if self._queue[p] and len(self._active[p]) < self._caps[p]:
            nxt = self._queue[p].popleft()
            self._active[p].append(nxt)
            if self._current_class == p:
                self._start_job(nxt)
        elif (self._current_class == p and not self._active[p]
              and self.config.empty_queue_policy == "switch"):
            # System emptied mid-quantum: switch immediately.
            self.early_switches[p] += 1
            self._end_quantum(p)

    # ------------------------------------------------------------------
    # Scheduler events
    # ------------------------------------------------------------------

    def _begin_class_turn(self, p: int) -> None:
        if not self._active[p]:
            # Nothing to run: skip the quantum, pay the overhead.
            self.quanta_skipped[p] += 1
            if self._can_park and all(not a for a in self._active):
                # Whole system empty: stop simulating the no-op spin.
                self._parked = p
                self._park_time = self.sim.now
                self.park_events += 1
                return
            self._begin_overhead(p)
            return
        self.quanta_started[p] += 1
        self._current_class = p
        quantum = self._sample(self.views[p].quantum, f"quantum.{p}")
        self._quantum_end_event = self.sim.schedule(
            quantum, self._on_quantum_expiry, p
        )
        for job in self._active[p]:
            self._start_job(job)

    def _on_quantum_expiry(self, p: int) -> None:
        self._quantum_end_event = None
        self._end_quantum(p, preempt=True)

    def _end_quantum(self, p: int, *, preempt: bool = False) -> None:
        if self._current_class != p:
            raise SimulationError(
                f"quantum end for class {p} while class {self._current_class} runs"
            )
        if preempt:
            for job in self._active[p]:
                if job.running_since is not None:
                    self._pause_job(job)
        else:
            # Early switch: cancel the pending quantum-expiry event.
            if self._quantum_end_event is not None:
                self._quantum_end_event.cancel()
                self._quantum_end_event = None
        self._current_class = None
        self._begin_overhead(p)

    def _begin_overhead(self, p: int) -> None:
        overhead = self._sample(self.views[p].overhead, f"overhead.{p}")
        self.sim.schedule(overhead, self._begin_class_turn,
                          self._turn_at(p, 1))

    def _unpark(self) -> None:
        """Resume the cycle by replaying the parked empty spin exactly.

        While parked the machine was "inside" overhead ``C_p``, then
        (skip, ``C_{p+1}``), (skip, ``C_{p+2}``), ...  With equal
        exponential overhead rates the completions form a Poisson
        process, so the number of turns advanced over the parked
        interval is one Poisson draw; otherwise the spin is replayed as
        a tight loop of exponential draws (no event-heap traffic either
        way).  By memorylessness the residual of the in-progress
        overhead is a fresh sample, scheduled as the next turn event.
        """
        p = self._parked
        self._parked = None
        elapsed = self.sim.now - self._park_time
        if self._park_uniform_rate is not None:
            spins = int(self._rng("park").poisson(
                self._park_uniform_rate * elapsed))
        else:
            # Unequal exponential rates: replay the renewal sequence,
            # walking the policy's turn order.
            rng = self._rng("park")
            spins = 0
            t = 0.0
            while True:
                t += rng.exponential(
                    1.0 / self.config.classes[
                        self._turn_at(p, spins)].overhead_rate)
                if t > elapsed:
                    break
                spins += 1
        # Each completed overhead led to a skipped (empty) quantum.
        for k in range(1, spins + 1):
            self.quanta_skipped[self._turn_at(p, k)] += 1
        j = self._turn_at(p, spins)  # overhead currently in progress
        residual = self._sample(self.views[j].overhead, f"overhead.{j}")
        self.sim.schedule(residual, self._begin_class_turn,
                          self._turn_at(j, 1))
