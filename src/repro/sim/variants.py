"""Scheduling variants beyond the modeled policy.

The paper's conclusion describes the deviation its SP2 implementation
makes from the analyzed model: *"As soon as a partition becomes idle
in a given class, it switches to the next class, while other
partitions of that class may still be busy"* — context switches are
not system-wide.  :class:`PartitionLendingSimulation` implements that
behaviour so the effect of the deviation can be quantified against the
modeled policy (the variants bench).

Interpretation implemented here: during class ``p``'s quantum, any
processor capacity not used by class-``p`` jobs (idle partitions) is
immediately lent, in cycle order, to waiting jobs of other classes
whose partition size fits the idle capacity.  Lent jobs are preempted
(work-conserving) when the machine switches turns or when class ``p``
reclaims the capacity for a new arrival.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.sim.gang import GangSimulation
from repro.sim.jobs import Job

__all__ = ["PartitionLendingSimulation"]


class PartitionLendingSimulation(GangSimulation):
    """Gang scheduling with early per-partition switching (SP2 style).

    Extends :class:`~repro.sim.gang.GangSimulation`; only the
    idle-capacity handling differs.  Statistics and configuration are
    identical, so reports are directly comparable.
    """

    def __init__(self, config: SystemConfig, *, seed: int | None = None,
                 warmup: float = 0.0):
        super().__init__(config, seed=seed, warmup=warmup)
        #: Jobs of *other* classes currently borrowing idle capacity.
        self._borrowers: list[Job] = []
        #: Processors lent out right now.
        self._lent = 0
        self.lending_grants = 0

    # -- capacity accounting -------------------------------------------

    def _idle_processors(self) -> int:
        """Processors unused by the running class's own jobs."""
        p = self._current_class
        if p is None:
            return 0
        g = self.config.classes[p].partition_size
        used = len(self._active[p]) * g
        return self.config.processors - used - self._lent

    def _lend_idle_capacity(self) -> None:
        """Grant idle processors to waiting jobs of other classes."""
        p = self._current_class
        if p is None:
            return
        L = self.config.num_classes
        for off in range(1, L):
            n = (p + off) % L
            g = self.config.classes[n].partition_size
            # Only queued jobs (no partition slot) borrow; active jobs of
            # class n conceptually keep their slots for class n's own turn.
            while self._queue[n] and self._idle_processors() >= g:
                job = self._queue[n].popleft()
                self._active[n].append(job)
                self._borrowers.append(job)
                self._lent += g
                self.lending_grants += 1
                self._start_job(job)

    def _reclaim_from_borrowers(self, needed: int) -> None:
        """Preempt most-recently-granted borrowers to free ``needed`` procs."""
        while needed > 0 and self._borrowers:
            job = self._borrowers.pop()
            g = self.config.classes[job.class_id].partition_size
            if job.running_since is not None:
                self._pause_job(job)
            self._active[job.class_id].remove(job)
            self._queue[job.class_id].appendleft(job)
            self._lent -= g
            needed -= g

    def _stop_all_borrowers(self) -> None:
        self._reclaim_from_borrowers(self.config.processors)

    # -- hooks into the base scheduler -----------------------------------

    def _begin_class_turn(self, p: int) -> None:
        super()._begin_class_turn(p)
        if self._current_class == p:
            self._lend_idle_capacity()

    def _end_quantum(self, p: int, *, preempt: bool = False) -> None:
        self._stop_all_borrowers()
        super()._end_quantum(p, preempt=preempt)

    def _on_arrival(self, p: int) -> None:
        current = self._current_class
        if (current is not None and p == current
                and len(self._active[p]) < self.config.partitions(p)
                and self._idle_processors() < self.config.classes[p].partition_size):
            # The running class reclaims lent capacity for its own work.
            self._reclaim_from_borrowers(self.config.classes[p].partition_size)
        super()._on_arrival(p)
        if current is not None:
            self._lend_idle_capacity()

    def _on_completion(self, job: Job) -> None:
        if job in self._borrowers:
            self._borrowers.remove(job)
            self._lent -= self.config.classes[job.class_id].partition_size
        was_current = self._current_class
        super()._on_completion(job)
        # A completion may have freed capacity worth lending (unless the
        # turn just ended via switch-on-empty).
        if self._current_class == was_current and self._current_class is not None:
            self._lend_idle_capacity()
