"""Scheduling variants beyond the paper's round-robin cycle.

Two kinds of variant live here:

* **Policy-driven variants.**  :class:`~repro.sim.gang.GangSimulation`
  consumes a :class:`~repro.policy.SchedulingPolicy`'s per-class views
  (capacity, effective service, quantum mass, turn order), so every
  registered policy already *has* a simulator.  The thin subclasses
  below (:class:`WeightedQuantumSimulation`,
  :class:`PriorityCycleSimulation`, :class:`MalleableSpeedupSimulation`)
  name the pairing explicitly and validate that they were given the
  matching policy kind; :func:`simulation_for` picks the right class
  from a policy instance.

* **Mechanism variants.**  :class:`PartitionLendingSimulation` changes
  the *machinery*, not the cycle: the paper's conclusion describes the
  deviation its SP2 implementation makes from the analyzed model —
  *"As soon as a partition becomes idle in a given class, it switches
  to the next class, while other partitions of that class may still be
  busy"* — context switches are not system-wide.  During class ``p``'s
  quantum, idle capacity is lent, in cycle order, to waiting jobs of
  other classes; lent jobs are preempted (work-conserving) when the
  machine switches turns or the running class reclaims capacity.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.errors import ValidationError
from repro.policy import (
    MalleableSpeedup,
    PriorityCycle,
    SchedulingPolicy,
    WeightedQuantum,
    resolve_policy,
)
from repro.sim.gang import GangSimulation
from repro.sim.jobs import Job

__all__ = [
    "PartitionLendingSimulation",
    "WeightedQuantumSimulation",
    "PriorityCycleSimulation",
    "MalleableSpeedupSimulation",
    "simulation_for",
]


class PartitionLendingSimulation(GangSimulation):
    """Gang scheduling with early per-partition switching (SP2 style).

    Extends :class:`~repro.sim.gang.GangSimulation`; only the
    idle-capacity handling differs.  Statistics and configuration are
    identical, so reports are directly comparable.
    """

    def __init__(self, config: SystemConfig, *, seed: int | None = None,
                 warmup: float = 0.0, policy=None):
        super().__init__(config, seed=seed, warmup=warmup, policy=policy)
        #: Jobs of *other* classes currently borrowing idle capacity.
        self._borrowers: list[Job] = []
        #: Processors lent out right now.
        self._lent = 0
        self.lending_grants = 0

    # -- capacity accounting -------------------------------------------

    def _idle_processors(self) -> int:
        """Processors unused by the running class's own jobs."""
        p = self._current_class
        if p is None:
            return 0
        g = self.views[p].job_processors
        used = len(self._active[p]) * g
        return self.config.processors - used - self._lent

    def _lend_idle_capacity(self) -> None:
        """Grant idle processors to waiting jobs of other classes."""
        p = self._current_class
        if p is None:
            return
        L = self.config.num_classes
        for off in range(1, L):
            n = self._turn_at(p, off)
            g = self.views[n].job_processors
            # Only queued jobs (no partition slot) borrow; active jobs of
            # class n conceptually keep their slots for class n's own turn.
            while self._queue[n] and self._idle_processors() >= g:
                job = self._queue[n].popleft()
                self._active[n].append(job)
                self._borrowers.append(job)
                self._lent += g
                self.lending_grants += 1
                self._start_job(job)

    def _reclaim_from_borrowers(self, needed: int) -> None:
        """Preempt most-recently-granted borrowers to free ``needed`` procs."""
        while needed > 0 and self._borrowers:
            job = self._borrowers.pop()
            g = self.views[job.class_id].job_processors
            if job.running_since is not None:
                self._pause_job(job)
            self._active[job.class_id].remove(job)
            self._queue[job.class_id].appendleft(job)
            self._lent -= g
            needed -= g

    def _stop_all_borrowers(self) -> None:
        self._reclaim_from_borrowers(self.config.processors)

    # -- hooks into the base scheduler -----------------------------------

    def _begin_class_turn(self, p: int) -> None:
        super()._begin_class_turn(p)
        if self._current_class == p:
            self._lend_idle_capacity()

    def _end_quantum(self, p: int, *, preempt: bool = False) -> None:
        self._stop_all_borrowers()
        super()._end_quantum(p, preempt=preempt)

    def _on_arrival(self, p: int) -> None:
        current = self._current_class
        if (current is not None and p == current
                and len(self._active[p]) < self._caps[p]
                and self._idle_processors() < self.views[p].job_processors):
            # The running class reclaims lent capacity for its own work.
            self._reclaim_from_borrowers(self.views[p].job_processors)
        super()._on_arrival(p)
        if current is not None:
            self._lend_idle_capacity()

    def _on_completion(self, job: Job) -> None:
        if job in self._borrowers:
            self._borrowers.remove(job)
            self._lent -= self.views[job.class_id].job_processors
        was_current = self._current_class
        super()._on_completion(job)
        # A completion may have freed capacity worth lending (unless the
        # turn just ended via switch-on-empty).
        if self._current_class == was_current and self._current_class is not None:
            self._lend_idle_capacity()


class _PolicySimulation(GangSimulation):
    """A simulation bound to one policy kind (checked at construction)."""

    #: The policy class this simulation pairs with.
    policy_class: type[SchedulingPolicy] = SchedulingPolicy

    def __init__(self, config: SystemConfig, policy, *,
                 seed: int | None = None, warmup: float = 0.0):
        if not isinstance(policy, self.policy_class):
            raise ValidationError(
                f"{type(self).__name__} requires a "
                f"{self.policy_class.__name__} policy, got "
                f"{type(policy).__name__}")
        super().__init__(config, seed=seed, warmup=warmup, policy=policy)


class WeightedQuantumSimulation(_PolicySimulation):
    """Simulator for :class:`~repro.policy.WeightedQuantum` cycles."""

    policy_class = WeightedQuantum


class PriorityCycleSimulation(_PolicySimulation):
    """Simulator for :class:`~repro.policy.PriorityCycle` cycles."""

    policy_class = PriorityCycle


class MalleableSpeedupSimulation(_PolicySimulation):
    """Simulator for :class:`~repro.policy.MalleableSpeedup` classes."""

    policy_class = MalleableSpeedup


#: Policy kind -> paired simulation class.
_SIMULATIONS: dict[str, type[_PolicySimulation]] = {
    WeightedQuantum.kind: WeightedQuantumSimulation,
    PriorityCycle.kind: PriorityCycleSimulation,
    MalleableSpeedup.kind: MalleableSpeedupSimulation,
}


def simulation_for(config: SystemConfig, *, policy=None,
                   seed: int | None = None,
                   warmup: float = 0.0) -> GangSimulation:
    """Build the simulation matching ``policy`` (round-robin default).

    Unregistered policy kinds still run — the base simulation consumes
    any policy's views — they just have no dedicated subclass.
    """
    pol = resolve_policy(policy)
    sim_cls = _SIMULATIONS.get(pol.kind)
    if sim_cls is None:
        return GangSimulation(config, seed=seed, warmup=warmup,
                              policy=None if pol.is_default else pol)
    return sim_cls(config, pol, seed=seed, warmup=warmup)
