"""Replication driver: independent runs, confidence intervals.

Steady-state simulation output is autocorrelated, so rather than
pretending within-run samples are i.i.d. we run ``R`` independent
replications (distinct seed streams), treat each run's point estimate
as one observation, and form Student-t confidence intervals across
replications — the textbook-safe approach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as spstats

from repro.obs.trace import span

__all__ = ["ReplicationSummary", "run_replications", "run_until_precise",
           "SimPointEstimate", "simulate_scenario_point"]


@dataclass(frozen=True)
class ReplicationSummary:
    """Across-replication estimate for one scalar quantity per class.

    ``mean[p] +/- half_width[p]`` is the ``confidence``-level CI.
    """

    quantity: str
    mean: tuple[float, ...]
    half_width: tuple[float, ...]
    replications: int
    confidence: float

    def interval(self, p: int) -> tuple[float, float]:
        return (self.mean[p] - self.half_width[p], self.mean[p] + self.half_width[p])

    def contains(self, p: int, value: float) -> bool:
        lo, hi = self.interval(p)
        return lo <= value <= hi

    def describe(self) -> str:
        rows = [f"{self.quantity} ({self.replications} replications, "
                f"{self.confidence:.0%} CI)"]
        for p, (m, h) in enumerate(zip(self.mean, self.half_width)):
            rows.append(f"  class{p}: {m:.4f} +/- {h:.4f}")
        return "\n".join(rows)


def _metric_row(simulation, selector: str,
                num_classes: int) -> tuple[float, ...]:
    """Per-class selector estimates from a finished simulation.

    Every simulator in :mod:`repro.sim` keeps its per-class
    :class:`~repro.sim.stats.ClassStats` on ``.stats`` after a run;
    selectors evaluate on the raw sojourn samples there (the shared
    contract of :mod:`repro.metrics.quantiles`).
    """
    stats = getattr(simulation, "stats", None)
    if stats is None:  # pragma: no cover - non-standard simulator
        return (float("nan"),) * num_classes
    if not isinstance(stats, (list, tuple)):
        stats = [stats]
    return tuple(st.response_metric(selector) for st in stats)


def run_replications(factory, *, replications: int = 10, horizon: float,
                     warmup: float = 0.0, base_seed: int = 0,
                     confidence: float = 0.95,
                     metrics: tuple[str, ...] = (),
                     ) -> dict[str, ReplicationSummary]:
    """Run independent replications of a simulation.

    Parameters
    ----------
    factory:
        Callable ``(seed, warmup) -> simulation`` where the simulation
        has a ``run(horizon) -> SimulationReport`` method (all the
        simulators in :mod:`repro.sim` qualify).
    replications:
        Number of independent runs (``>= 2`` for intervals).
    horizon, warmup:
        Per-run time horizon and statistics warmup.
    base_seed:
        Replication ``r`` uses seed ``base_seed + r``.
    confidence:
        Two-sided confidence level of the returned intervals.
    metrics:
        Optional metric selectors (``"p99"``, ``"tail@t"``, …; see
        :mod:`repro.metrics.selectors`).  Each adds a
        ``"metric:<selector>"`` entry whose per-replication samples
        are the empirical per-class estimates, so analytic
        percentiles can be crosschecked against a Student-t CI.

    Returns
    -------
    dict mapping ``"mean_jobs"``, ``"mean_response_time"``,
    ``"throughput"`` — plus ``"metric:<selector>"`` per requested
    selector — to :class:`ReplicationSummary`.
    """
    if replications < 2:
        raise ValueError("need at least 2 replications for confidence intervals")
    samples: dict[str, list[tuple[float, ...]]] = {
        "mean_jobs": [], "mean_response_time": [], "throughput": [],
    }
    for sel in metrics:
        samples[f"metric:{sel}"] = []
    for r in range(replications):
        simulation = factory(base_seed + r, warmup)
        report = simulation.run(horizon)
        samples["mean_jobs"].append(report.mean_jobs)
        samples["mean_response_time"].append(report.mean_response_time)
        samples["throughput"].append(report.throughput)
        for sel in metrics:
            samples[f"metric:{sel}"].append(
                _metric_row(simulation, sel, len(report.mean_jobs)))

    return _summarize(samples, confidence)


def _summarize(samples: dict[str, list[tuple[float, ...]]],
               confidence: float) -> dict[str, ReplicationSummary]:
    replications = len(next(iter(samples.values())))
    tcrit = float(spstats.t.ppf(0.5 + confidence / 2.0, replications - 1))
    out: dict[str, ReplicationSummary] = {}
    for name, rows in samples.items():
        arr = np.asarray(rows)          # (R, L)
        mean = arr.mean(axis=0)
        sd = arr.std(axis=0, ddof=1)
        hw = tcrit * sd / math.sqrt(replications)
        out[name] = ReplicationSummary(
            quantity=name,
            mean=tuple(float(m) for m in mean),
            half_width=tuple(float(h) for h in hw),
            replications=replications,
            confidence=confidence,
        )
    return out


@dataclass(frozen=True)
class SimPointEstimate:
    """Simulation estimate at one scenario grid point.

    ``half_width`` is the across-replication CI half-width on mean
    jobs (zeros for a single run, where no interval exists).  The raw
    detail survives on ``report`` (single run) or ``summaries``
    (replicated, the :func:`run_replications` dict).
    """

    mean_jobs: tuple[float, ...]
    mean_response_time: tuple[float, ...]
    half_width: tuple[float, ...]
    replications: int
    report: object | None = None
    summaries: dict | None = None
    #: Per-selector empirical estimates (``{"p99": (...per class...)}``)
    #: when the scenario asked for metric selectors; ``None`` otherwise.
    metrics: dict | None = None
    #: Matching CI half-widths (zeros for a single run).
    metric_half_width: dict | None = None

    def describe(self, class_names) -> str:
        if self.summaries is not None:
            return "\n".join(s.describe() for s in self.summaries.values())
        return self.report.describe(class_names)


def simulate_scenario_point(scenario, config) -> SimPointEstimate:
    """Simulate one concrete config under a scenario's engine spec.

    ``scenario`` is a :class:`repro.scenario.spec.Scenario` (duck-typed
    — this layer does not import :mod:`repro.scenario`, which sits
    above it); its engine spec supplies horizon, warmup fraction, base
    seed and replication count.  With ``replications >= 2`` the point
    is estimated across independent replications (Student-t CI);
    otherwise it is one seeded run.
    """
    from repro.sim.variants import simulation_for

    eng = scenario.engine
    policy = getattr(scenario.system, "policy", None)
    selectors = tuple(getattr(scenario.output, "metrics", ()) or ())
    if selectors == ("mean",):
        selectors = ()                  # nothing beyond the means
    with span("scenario.sim_point", scenario=scenario.name,
              replications=eng.replications):
        if eng.replications >= 2:
            summaries = run_replications(
                lambda seed, warmup: simulation_for(config, policy=policy,
                                                    seed=seed, warmup=warmup),
                replications=eng.replications, horizon=eng.horizon,
                warmup=eng.warmup, base_seed=eng.seed, metrics=selectors)
            jobs = summaries["mean_jobs"]
            metrics_est = metric_hw = None
            if selectors:
                metrics_est = {sel: summaries[f"metric:{sel}"].mean
                               for sel in selectors}
                metric_hw = {sel: summaries[f"metric:{sel}"].half_width
                             for sel in selectors}
            return SimPointEstimate(
                mean_jobs=jobs.mean,
                mean_response_time=summaries["mean_response_time"].mean,
                half_width=jobs.half_width,
                replications=eng.replications,
                summaries=summaries,
                metrics=metrics_est,
                metric_half_width=metric_hw,
            )
        simulation = simulation_for(config, policy=policy, seed=eng.seed,
                                    warmup=eng.warmup)
        report = simulation.run(eng.horizon)
        metrics_est = metric_hw = None
        if selectors:
            metrics_est = {sel: _metric_row(simulation, sel,
                                            config.num_classes)
                           for sel in selectors}
            metric_hw = {sel: (0.0,) * config.num_classes
                         for sel in selectors}
        return SimPointEstimate(
            mean_jobs=tuple(report.mean_jobs),
            mean_response_time=tuple(report.mean_response_time),
            half_width=(0.0,) * config.num_classes,
            replications=1,
            report=report,
            metrics=metrics_est,
            metric_half_width=metric_hw,
        )


def run_until_precise(factory, *, horizon: float, warmup: float = 0.0,
                      target_rel_half_width: float = 0.05,
                      quantity: str = "mean_jobs",
                      min_replications: int = 3, max_replications: int = 50,
                      base_seed: int = 0, confidence: float = 0.95,
                      ) -> dict[str, ReplicationSummary]:
    """Sequential replications until the CI is tight enough.

    Adds replications one at a time until every class's relative CI
    half-width on ``quantity`` drops below ``target_rel_half_width``
    (or the replication budget runs out).  The standard sequential
    procedure for "give me N_p to ±5%" questions — no horizon
    guesswork required.

    Returns the same summary dict as :func:`run_replications`.
    """
    if min_replications < 2:
        raise ValueError("need at least 2 replications for intervals")
    if not 0 < target_rel_half_width < 1:
        raise ValueError(
            f"target_rel_half_width must be in (0,1), got {target_rel_half_width}")
    samples: dict[str, list[tuple[float, ...]]] = {
        "mean_jobs": [], "mean_response_time": [], "throughput": [],
    }
    if quantity not in samples:
        raise ValueError(f"unknown quantity {quantity!r}")
    r = 0
    while r < max_replications:
        report = factory(base_seed + r, warmup).run(horizon)
        samples["mean_jobs"].append(report.mean_jobs)
        samples["mean_response_time"].append(report.mean_response_time)
        samples["throughput"].append(report.throughput)
        r += 1
        if r < min_replications:
            continue
        summary = _summarize(samples, confidence)[quantity]
        rel = [h / m if m > 0 else math.inf
               for m, h in zip(summary.mean, summary.half_width)]
        if max(rel) <= target_rel_half_width:
            break
    return _summarize(samples, confidence)
