"""Discrete-event simulation of gang scheduling and baselines.

The simulator exercises the *exact* policy of Section 3.1 of the paper
(timeplexing cycle of PH quanta and overheads, ``c_p``-way space
sharing, FCFS queues, preemption at quantum end, switch-on-empty) from
the same stochastic assumptions as the analytic model, providing an
independent check on the analysis — and it implements the scheduling
variants and baselines the paper discusses around its model:

* :class:`~repro.sim.gang.GangSimulation` — the modeled policy;
* :mod:`~repro.sim.variants` — the SP2-style deviation the conclusion
  describes (idle partitions switch to the next class early);
* :mod:`~repro.sim.baselines` — pure time-sharing and pure
  space-sharing, the two poles of the introduction.

Everything runs on an in-house event-heap engine
(:class:`~repro.sim.engine.Simulator`); no external simulation
framework is used.
"""

from repro.sim.baselines import SpaceSharingSimulation, TimeSharingSimulation
from repro.sim.batch import BatchArrivalGangSimulation
from repro.sim.decomposed import VacationServerSimulation
from repro.sim.engine import Simulator
from repro.sim.gang import GangSimulation
from repro.sim.runner import (
    ReplicationSummary,
    SimPointEstimate,
    run_replications,
    run_until_precise,
    simulate_scenario_point,
)
from repro.sim.stats import ClassStats, SimulationReport
from repro.sim.trace import ScheduleTrace, TracingGangSimulation
from repro.sim.variants import (
    MalleableSpeedupSimulation,
    PartitionLendingSimulation,
    PriorityCycleSimulation,
    WeightedQuantumSimulation,
    simulation_for,
)

__all__ = [
    "Simulator",
    "GangSimulation",
    "VacationServerSimulation",
    "PartitionLendingSimulation",
    "WeightedQuantumSimulation",
    "PriorityCycleSimulation",
    "MalleableSpeedupSimulation",
    "simulation_for",
    "TimeSharingSimulation",
    "SpaceSharingSimulation",
    "ClassStats",
    "SimulationReport",
    "run_replications",
    "run_until_precise",
    "ReplicationSummary",
    "SimPointEstimate",
    "simulate_scenario_point",
    "BatchArrivalGangSimulation",
    "TracingGangSimulation",
    "ScheduleTrace",
]
