"""Schedule tracing: record and render what the machine did.

A :class:`ScheduleTrace` attached to a :class:`~repro.sim.gang.GangSimulation`
records every scheduling epoch — quantum starts/ends, skips, early
switches, overheads — as typed events.  Beyond debugging, the trace
answers operational questions the steady-state numbers hide (realized
cycle-length distribution, per-class share of wall-clock time) and can
be rendered as a text Gantt chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.config import SystemConfig
from repro.errors import ValidationError
from repro.sim.gang import GangSimulation

__all__ = ["TraceEventType", "TraceEvent", "ScheduleTrace", "TracingGangSimulation"]


class TraceEventType(Enum):
    """Kinds of scheduling epochs."""

    QUANTUM_START = "quantum_start"
    QUANTUM_EXPIRY = "quantum_expiry"
    EARLY_SWITCH = "early_switch"
    SKIP = "skip"
    PARK = "park"
    UNPARK = "unpark"


@dataclass(frozen=True)
class TraceEvent:
    """One scheduling epoch."""

    time: float
    kind: TraceEventType
    class_id: int


class ScheduleTrace:
    """Ordered record of scheduling epochs with derived statistics."""

    def __init__(self, num_classes: int):
        self.num_classes = num_classes
        self.events: list[TraceEvent] = []

    def record(self, time: float, kind: TraceEventType, class_id: int) -> None:
        self.events.append(TraceEvent(time, kind, class_id))

    # -- derived statistics ----------------------------------------------

    def quantum_durations(self, class_id: int) -> np.ndarray:
        """Realized durations of class ``class_id``'s quanta (skips excluded)."""
        out = []
        start = None
        for ev in self.events:
            if ev.class_id != class_id:
                continue
            if ev.kind is TraceEventType.QUANTUM_START:
                start = ev.time
            elif ev.kind in (TraceEventType.QUANTUM_EXPIRY,
                             TraceEventType.EARLY_SWITCH) and start is not None:
                out.append(ev.time - start)
                start = None
        return np.asarray(out)

    def cycle_lengths(self) -> np.ndarray:
        """Realized timeplexing cycle lengths (class-0 epoch to epoch).

        A cycle is measured between consecutive class-0 *opportunities*
        (quantum start or skip), matching the paper's definition of the
        timeplexing cycle as the interval between successive class-0
        time slices.
        """
        epochs = [ev.time for ev in self.events
                  if ev.class_id == 0 and ev.kind in
                  (TraceEventType.QUANTUM_START, TraceEventType.SKIP)]
        return np.diff(np.asarray(epochs))

    def busy_share(self, class_id: int, horizon: float) -> float:
        """Fraction of wall-clock time the class held the processors."""
        if horizon <= 0:
            raise ValidationError(f"horizon must be positive, got {horizon}")
        return float(self.quantum_durations(class_id).sum()) / horizon

    def counts(self) -> dict[TraceEventType, int]:
        out = {k: 0 for k in TraceEventType}
        for ev in self.events:
            out[ev.kind] += 1
        return out

    # -- rendering ---------------------------------------------------------

    def gantt(self, *, start: float = 0.0, end: float | None = None,
              width: int = 100) -> str:
        """Text Gantt chart: one row per class, ``#`` where it runs.

        Only quanta wholly or partly inside ``[start, end]`` appear;
        resolution is ``(end - start) / width``.
        """
        if end is None:
            end = self.events[-1].time if self.events else start + 1.0
        if end <= start:
            raise ValidationError("end must exceed start")
        scale = width / (end - start)
        rows = [[" "] * width for _ in range(self.num_classes)]
        open_start: dict[int, float] = {}
        for ev in self.events:
            if ev.kind is TraceEventType.QUANTUM_START:
                open_start[ev.class_id] = ev.time
            elif ev.kind in (TraceEventType.QUANTUM_EXPIRY,
                             TraceEventType.EARLY_SWITCH):
                s = open_start.pop(ev.class_id, None)
                if s is None:
                    continue
                a = max(s, start)
                b = min(ev.time, end)
                if b <= a:
                    continue
                i0 = int((a - start) * scale)
                i1 = max(i0 + 1, int((b - start) * scale))
                for i in range(i0, min(i1, width)):
                    rows[ev.class_id][i] = "#"
        lines = [f"class{p} |{''.join(row)}|"
                 for p, row in enumerate(rows)]
        lines.append(f"        t=[{start:g}, {end:g}]")
        return "\n".join(lines)


class TracingGangSimulation(GangSimulation):
    """A :class:`GangSimulation` that records a :class:`ScheduleTrace`.

    Note: tracing records one event per scheduling epoch; on long runs
    that is substantial memory — use for inspection windows, not for
    steady-state estimation.
    """

    def __init__(self, config: SystemConfig, *, seed: int | None = None,
                 warmup: float = 0.0):
        super().__init__(config, seed=seed, warmup=warmup)
        self.trace = ScheduleTrace(config.num_classes)

    def _begin_class_turn(self, p: int) -> None:
        had_jobs = bool(self._active[p])
        was_parked = self._parked
        super()._begin_class_turn(p)
        if had_jobs:
            self.trace.record(self.sim.now, TraceEventType.QUANTUM_START, p)
        elif self._parked is not None and was_parked is None:
            self.trace.record(self.sim.now, TraceEventType.PARK, p)
        else:
            self.trace.record(self.sim.now, TraceEventType.SKIP, p)

    def _unpark(self) -> None:
        self.trace.record(self.sim.now, TraceEventType.UNPARK,
                          self._parked if self._parked is not None else -1)
        super()._unpark()

    def _on_quantum_expiry(self, p: int) -> None:
        self.trace.record(self.sim.now, TraceEventType.QUANTUM_EXPIRY, p)
        super()._on_quantum_expiry(p)

    def _end_quantum(self, p: int, *, preempt: bool = False) -> None:
        if not preempt:
            self.trace.record(self.sim.now, TraceEventType.EARLY_SWITCH, p)
        super()._end_quantum(p, preempt=preempt)
