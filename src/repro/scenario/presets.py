"""Named preset scenarios: the paper's figures as data.

One registry maps scenario names to builders; the CLI (``repro-gang
figure`` / ``run`` / ``scenarios``), the figure benches and the
checked-in ``scenarios/*.json`` files all draw from it, so a grid or
parameter fix lands in exactly one place.

Every figure carries three grid tiers:

``default``
    The CLI's grid (what ``repro-gang figure N`` prints).
``quick``
    The benchmark harness's trimmed grid (minutes-range full runs).
``full``
    Paper-resolution grids (``pytest benchmarks/ --full-grids``).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.scenario.spec import (
    EngineSpec,
    OutputSpec,
    Scenario,
    SweepAxis,
    SystemSpec,
)

__all__ = [
    "GRID_TIERS",
    "FIGURE_GRIDS",
    "scenario_names",
    "get_scenario",
    "list_scenarios",
    "figure_scenarios",
]

#: Grid tiers every swept preset understands.
GRID_TIERS = ("default", "quick", "full")

#: The swept grids of Figures 2-5, per tier.  Single source of truth:
#: the CLI and ``benchmarks/test_bench_fig*.py`` both read these.
FIGURE_GRIDS = {
    "fig2": {
        "default": (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 4.5, 6.0),
        "quick": (0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 4.5, 6.0),
        "full": (0.02, 0.05, 0.1, 0.18, 0.25, 0.4, 0.6, 0.8, 1.0, 1.5,
                 2.0, 2.5, 3.0, 4.0, 5.0, 6.0),
    },
    "fig3": {
        "default": (0.15, 0.25, 0.4, 0.6, 1.0, 2.0, 4.0, 6.0),
        "quick": (0.1, 0.15, 0.25, 0.4, 0.6, 1.0, 2.0, 4.0, 6.0),
        "full": (0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0,
                 1.5, 2.0, 3.0, 4.0, 5.0, 6.0),
    },
    "fig4": {
        "default": (2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0),
        "quick": (2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0),
        "full": (2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0,
                 14.0, 16.0, 18.0, 20.0),
    },
    "fig5": {
        "default": (0.15, 0.3, 0.45, 0.6, 0.75, 0.9),
        "quick": (0.15, 0.3, 0.45, 0.6, 0.75, 0.9),
        "full": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    },
}


def _swept(name: str, figure: str, preset: str, args: dict, parameter: str,
           grid: str, description: str) -> Scenario:
    if grid not in GRID_TIERS:
        raise ValidationError(
            f"unknown grid tier {grid!r}; known: {list(GRID_TIERS)}")
    return Scenario(
        name=name,
        system=SystemSpec(
            preset=preset, args=args,
            axis=SweepAxis(parameter, FIGURE_GRIDS[figure][grid])),
        # The paper's figures plot mean jobs only.
        output=OutputSpec(measures=("mean_jobs",)),
        description=description,
    )


def _fig2(grid: str) -> Scenario:
    return _swept("fig2", "fig2", "fig23", {"arrival_rate": 0.4},
                  "quantum_mean", grid,
                  "Figure 2: N_p vs mean quantum length at rho = 0.4")


def _fig3(grid: str) -> Scenario:
    return _swept("fig3", "fig3", "fig23", {"arrival_rate": 0.9},
                  "quantum_mean", grid,
                  "Figure 3: N_p vs mean quantum length at rho = 0.9")


def _fig4(grid: str) -> Scenario:
    return _swept("fig4", "fig4", "fig4", {}, "service_rate", grid,
                  "Figure 4: N_p vs common service rate mu "
                  "(quantum 5, lambda_p = 0.6)")


def _fig5(focus_class: int):
    def build(grid: str) -> Scenario:
        return _swept(f"fig5-class{focus_class}", "fig5", "fig5",
                      {"focus_class": focus_class}, "fraction", grid,
                      f"Figure 5: N_{focus_class} vs the cycle fraction "
                      f"devoted to class {focus_class} (lambda_p = 0.6)")
    return build


def _crosscheck(name: str, arrival_rate: float, quantum_mean: float,
                description: str):
    def build(grid: str) -> Scenario:
        return Scenario(
            name=name,
            system=SystemSpec(preset="fig23",
                              args={"arrival_rate": arrival_rate,
                                    "quantum_mean": quantum_mean}),
            engine=EngineSpec(engine="both", horizon=25_000.0,
                              replications=4),
            description=description,
        )
    return build


def _policy_preset(name: str, arrival_rate: float, quantum_mean: float,
                   policy_spec: str, description: str):
    """A crosscheck-style preset solving under a non-default policy.

    The crosscheck points were chosen in the heavy-traffic regime,
    where the analytic model's known moderate-load bias is small and
    the preset tolerance (``|ana - sim| / sim < 0.15``) holds for every
    shipped variant.
    """
    def build(grid: str) -> Scenario:
        from repro.policy import parse_policy
        return Scenario(
            name=name,
            system=SystemSpec(preset="fig23",
                              args={"arrival_rate": arrival_rate,
                                    "quantum_mean": quantum_mean},
                              policy=parse_policy(policy_spec)),
            engine=EngineSpec(engine="both", horizon=25_000.0,
                              replications=4),
            description=description,
        )
    return build


#: name -> ``grid-tier -> Scenario`` builder.
_REGISTRY = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5-class0": _fig5(0),
    "fig5-class1": _fig5(1),
    "fig5-class2": _fig5(2),
    "fig5-class3": _fig5(3),
    "crosscheck-moderate": _crosscheck(
        "crosscheck-moderate", 0.4, 2.0,
        "Analytic vs simulation at moderate load (rho = 0.4, quantum 2)"),
    "crosscheck-heavy": _crosscheck(
        "crosscheck-heavy", 0.9, 1.0,
        "Analytic vs simulation at heavy load (rho = 0.9, quantum 1)"),
    "policy-weighted": _policy_preset(
        "policy-weighted", 0.7, 1.0, "weighted:2/1.5/1/1",
        "WeightedQuantum crosscheck: class-0-favouring weights on the "
        "fig23 system at rho = 0.7"),
    "policy-priority": _policy_preset(
        "policy-priority", 0.7, 1.0,
        "priority:order=3/2/1/0,decay=0.7,floor=0.3",
        "PriorityCycle crosscheck: large partitions first, bounded "
        "starvation, on the fig23 system at rho = 0.7"),
    "policy-malleable": _policy_preset(
        "policy-malleable", 0.8, 1.0, "malleable:procs=2/2/4/8,sigma=0.7",
        "MalleableSpeedup crosscheck: classes folded onto 2/2/4/8 "
        "processors at sublinear speedup, rho = 0.8"),
}

#: Figure number -> the preset scenario names behind ``repro-gang
#: figure N`` (Figure 5 is one scenario per focus class).
_FIGURE_SCENARIOS = {
    "2": ("fig2",),
    "3": ("fig3",),
    "4": ("fig4",),
    "5": ("fig5-class0", "fig5-class1", "fig5-class2", "fig5-class3"),
}


def scenario_names() -> tuple[str, ...]:
    """All preset scenario names, in registry order."""
    return tuple(_REGISTRY)


def get_scenario(name: str, *, grid: str = "default") -> Scenario:
    """Build the preset scenario ``name`` at the requested grid tier."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown scenario {name!r}; known: {list(_REGISTRY)} "
            "(repro-gang scenarios lists them)") from None
    return builder(grid)


def list_scenarios(*, grid: str = "default") -> list[Scenario]:
    """Every preset scenario (what ``repro-gang scenarios`` prints)."""
    return [get_scenario(name, grid=grid) for name in _REGISTRY]


def figure_scenarios(number: str | int, *, grid: str = "default",
                     ) -> tuple[Scenario, ...]:
    """The preset scenarios behind paper figure ``number`` (2-5)."""
    try:
        names = _FIGURE_SCENARIOS[str(number)]
    except KeyError:
        raise ValidationError(
            f"no preset scenarios for figure {number!r}; "
            f"known figures: {sorted(_FIGURE_SCENARIOS)}") from None
    return tuple(get_scenario(name, grid=grid) for name in names)
