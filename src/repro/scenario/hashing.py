"""Canonical content hashing of scenarios: the service's cache identity.

Two requests describe *the same computation* when their scenarios
agree on everything that can change the numbers — the system, the
grid, the engine's numerical knobs — regardless of how the JSON was
spelled (key order, float spellings that round-trip identically) and
regardless of knobs that only change *how* the run executes or what
gets reported (``workers``, ``checkpoint``, the output spec, the
scenario's display name).  :func:`scenario_key` distills a
:class:`~repro.scenario.spec.Scenario` down to that identity as a
SHA-256 over its canonical JSON bytes; the scenario service
(:mod:`repro.service`) dedupes requests and keys its persistent result
store with it.

Hash stability is load-bearing: a key must survive a
``Scenario -> dict -> JSON -> dict -> Scenario`` round-trip unchanged
(or a warm store would go cold on every restart), and distinct
scenarios — different presets, different grid tiers, different solver
tolerances — must never collide.  Both properties are pinned by the
hypothesis suite in ``tests/scenario/test_hashing.py``.

Point-level identity (:func:`point_key`) drops the sweep axis and
binds a single grid value instead, so a sweep's shards are cacheable
one by one: a request for a superset grid reuses every point an
earlier narrower request already solved.

The scheduling policy participates through the serialized system dict:
a non-default policy is part of the computation's identity (different
cycle, different numbers, different key), while the default
round-robin is normalized to *absent* by
:class:`~repro.scenario.spec.SystemSpec` — so every pre-policy key, and
with it the whole warm service store, is preserved bit for bit.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ValidationError

__all__ = [
    "EXECUTION_ONLY_ENGINE_FIELDS",
    "semantic_scenario_dict",
    "canonical_bytes",
    "scenario_key",
    "point_key",
]

#: Engine knobs that change how a run executes, never what it
#: computes: they are stripped before hashing.
EXECUTION_ONLY_ENGINE_FIELDS = ("workers", "checkpoint")


def semantic_scenario_dict(scenario) -> dict:
    """The hashed subtree: a scenario dict reduced to result identity.

    Starts from the canonical serialized form
    (:func:`repro.serialize.scenario_to_dict`) and drops everything
    that cannot affect the computed numbers:

    * ``name`` / ``description`` — display only;
    * ``output`` — selects what is *reported*, not what is solved —
      with one exception: metric selectors beyond the default
      ``("mean",)`` make the engines compute per-class distribution
      statistics that land in the stored point payloads, so they
      *are* part of result identity.  They enter the hash only when
      non-default, keeping every pre-distribution key (and the whole
      warm service store) bit-for-bit intact;
    * ``schema`` / ``version`` — the store segments carry the schema
      version themselves, so a no-op version bump does not cold the
      cache;
    * execution-only engine knobs (:data:`EXECUTION_ONLY_ENGINE_FIELDS`)
      — a parallel checkpointed run computes the same numbers as a
      serial one.
    """
    from repro.serialize import scenario_to_dict

    data = scenario_to_dict(scenario)
    engine = {k: v for k, v in data["engine"].items()
              if k not in EXECUTION_ONLY_ENGINE_FIELDS}
    semantic = {"system": data["system"], "engine": engine}
    metrics = data.get("output", {}).get("metrics")
    if isinstance(metrics, (list, tuple)):
        # Only the v3 writer emits a selector list (and only for
        # non-default selectors); the legacy boolean stays unhashed.
        semantic["metrics"] = list(metrics)
    return semantic


def canonical_bytes(data: dict) -> bytes:
    """Canonical JSON encoding: sorted keys, no whitespace, UTF-8.

    ``json`` emits shortest-repr floats, so any value that survives a
    JSON round-trip encodes to identical bytes — key-order and
    whitespace differences in the *input* never reach the hash.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")


def _digest(data: dict) -> str:
    return hashlib.sha256(canonical_bytes(data)).hexdigest()


def scenario_key(scenario) -> str:
    """Content hash of a scenario's result identity (64 hex chars)."""
    return _digest(semantic_scenario_dict(scenario))


def point_key(scenario, value: float | None) -> str:
    """Content hash of one grid point's result identity.

    The sweep axis is removed and the concrete ``value`` bound in its
    place, so the same point reached through different grids (or
    through no grid at all, for ``value=None`` on an unswept scenario)
    hashes identically.  ``value`` must lie on the scenario's axis when
    one exists.
    """
    data = semantic_scenario_dict(scenario)
    axis = data["system"].pop("axis", None)
    if value is None:
        if axis is not None:
            raise ValidationError(
                "point_key(value=None) is only valid for unswept scenarios")
        point: dict = {"point": None}
    else:
        if axis is None:
            raise ValidationError(
                f"scenario {scenario.name!r} has no sweep axis to take "
                f"value {value!r} on")
        point = {"parameter": axis["parameter"], "point": float(value)}
    return _digest({**data, **point})
