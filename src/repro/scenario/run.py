"""Run a :class:`~repro.scenario.spec.Scenario`: one entry point, one
unified result.

:func:`run` dispatches the scenario onto the existing machinery — the
checkpointed/parallel sweep driver for the analytic engine
(:func:`repro.workloads.sweeps.sweep_scenario`), the replication
front-end for the simulator
(:func:`repro.sim.runner.simulate_scenario_point`) — and folds the
outputs into one :class:`RunResult`: per-point measures for whichever
engines ran, cross-engine relative deltas when both did, and the
sweep's resume/stale counters.

The scenario's name rides along as a span attribute and metric label
(``scenario.run`` / ``scenario.runs``), so traces and metric snapshots
of multi-scenario services stay attributable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.core.model import GangSchedulingModel, SolvedModel
from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import span
from repro.scenario.spec import Scenario
from repro.sim.runner import SimPointEstimate, simulate_scenario_point
from repro.workloads.sweeps import SweepPoint, sweep_scenario

__all__ = ["RunPoint", "RunResult", "run",
           "run_point_to_dict", "run_point_from_dict",
           "run_result_to_dict", "run_result_from_dict"]


@dataclass(frozen=True)
class RunPoint:
    """Measures at one grid value (or the single unswept point).

    ``mean_jobs``/``mean_response_time`` hold the analytic solution,
    ``sim_*`` the simulation estimate; either side is ``None`` when its
    engine did not run.  ``delta`` is the per-class relative gap
    ``(analytic - sim) / sim`` on mean jobs when both ran.
    """

    value: float | None
    mean_jobs: tuple[float, ...] | None = None
    mean_response_time: tuple[float, ...] | None = None
    iterations: int = 0
    converged: bool = True
    error: str | None = None
    sim_mean_jobs: tuple[float, ...] | None = None
    sim_mean_response_time: tuple[float, ...] | None = None
    sim_half_width: tuple[float, ...] | None = None
    delta: tuple[float, ...] | None = None
    #: Analytic per-class response-time metric rows — ``metrics[p]``
    #: holds one value per selector in ``RunResult.metric_names`` —
    #: and the distribution kind backing them ("exact", "moment",
    #: "saturated", "unsupported").  ``None`` unless the scenario asked
    #: for selectors beyond the default ``("mean",)``.
    metrics: tuple[tuple[float, ...], ...] | None = None
    dist_kinds: tuple[str, ...] | None = None
    #: Simulated empirical counterparts, same shape, with Student-t CI
    #: half-widths (zeros for a single run).
    sim_metrics: tuple[tuple[float, ...], ...] | None = None
    sim_metric_half_width: tuple[tuple[float, ...], ...] | None = None


@dataclass
class RunResult:
    """Everything :func:`run` produced for one scenario."""

    scenario: Scenario
    engine: str
    parameter: str | None
    class_names: tuple[str, ...]
    points: list[RunPoint] = field(default_factory=list)
    #: Metric selectors the points' ``metrics`` rows are aligned to
    #: (``None`` when the run carried only means).
    metric_names: tuple[str, ...] | None = None
    #: Sweep points loaded from the checkpoint journal (analytic sweeps).
    resumed: int = 0
    #: Journaled points no longer on the grid (ignored, warned about).
    stale: int = 0
    #: Full solution detail for an unswept analytic run.
    solved: SolvedModel | None = None
    #: Full simulation detail for an unswept sim run (a
    #: :class:`~repro.sim.runner.SimPointEstimate`).
    sim: SimPointEstimate | None = None

    def values(self) -> list[float]:
        return [pt.value for pt in self.points]

    def series(self, p: int) -> list[float]:
        """Analytic ``N_p`` along the grid (``nan`` for failed points)."""
        return [pt.mean_jobs[p] if pt.error is None and pt.mean_jobs is not None
                else float("nan") for pt in self.points]

    def sim_series(self, p: int) -> list[float]:
        """Simulated ``N_p`` along the grid."""
        return [pt.sim_mean_jobs[p] if pt.sim_mean_jobs is not None
                else float("nan") for pt in self.points]

    def delta_series(self, p: int) -> list[float]:
        """Cross-engine relative gap along the grid (``both`` runs)."""
        return [pt.delta[p] if pt.delta is not None else float("nan")
                for pt in self.points]

    def max_abs_delta(self) -> float:
        """Largest per-class |relative gap| over the run (``both`` only)."""
        worst = 0.0
        for pt in self.points:
            if pt.delta is None:
                continue
            for d in pt.delta:
                if not math.isnan(d):
                    worst = max(worst, abs(d))
        return worst

    def to_table(self, measure: str = "mean_jobs"):
        """Render the run as an :class:`~repro.analysis.series.Table`.

        Analytic columns come first (``N[...]``/``T[...]``), then the
        simulation's (``sim*``), then ``delta[...]`` for ``both`` runs.
        """
        from repro.analysis import Table

        short = {"mean_jobs": "N", "mean_response_time": "T"}[measure]
        analytic = self.engine in ("analytic", "both")
        simulated = self.engine in ("sim", "both")
        columns = []
        if analytic:
            columns += [f"{short}[{n}]" for n in self.class_names]
        if simulated:
            columns += [f"sim{short}[{n}]" for n in self.class_names]
        if analytic and simulated and measure == "mean_jobs":
            columns += [f"delta[{n}]" for n in self.class_names]
        table = Table(self.parameter or "point", columns)
        nan = (float("nan"),) * len(self.class_names)
        for i, pt in enumerate(self.points):
            row: list[float] = []
            if analytic:
                row += list(getattr(pt, measure) or nan)
            if simulated:
                row += list(getattr(pt, f"sim_{measure}") or nan)
            if analytic and simulated and measure == "mean_jobs":
                row += list(pt.delta or nan)
            table.add_row(pt.value if pt.value is not None else float(i), row)
        return table

    def metrics_table(self):
        """Per-class response-time metric columns along the grid.

        One column per ``(selector, class)`` for whichever engines
        carried metric rows — ``p99[interactive]`` for the analytic
        distribution value, ``sim:p99[interactive]`` for the empirical
        estimate.  Returns ``None`` when the run carried no selectors
        beyond the default mean.
        """
        from repro.analysis import Table

        if self.metric_names is None:
            return None
        analytic = any(pt.metrics is not None for pt in self.points)
        simulated = any(pt.sim_metrics is not None for pt in self.points)
        columns = []
        if analytic:
            columns += [f"{sel}[{n}]" for sel in self.metric_names
                        for n in self.class_names]
        if simulated:
            columns += [f"sim:{sel}[{n}]" for sel in self.metric_names
                        for n in self.class_names]
        if not columns:
            return None
        table = Table(self.parameter or "point", columns)
        width = len(self.metric_names) * len(self.class_names)
        nan = [float("nan")] * width

        def flat(rows):
            # rows[p][s] -> selector-major order to match the columns.
            if rows is None:
                return nan
            return [rows[p][s] for s in range(len(self.metric_names))
                    for p in range(len(self.class_names))]

        for i, pt in enumerate(self.points):
            row: list[float] = []
            if analytic:
                row += flat(pt.metrics)
            if simulated:
                row += flat(pt.sim_metrics)
            table.add_row(pt.value if pt.value is not None else float(i), row)
        return table


def run_point_to_dict(pt: RunPoint) -> dict:
    """JSON form of one :class:`RunPoint` (round-trips exactly).

    Python's ``json`` encodes floats shortest-repr and accepts the
    non-strict ``NaN``/``Infinity`` tokens failed/saturated points
    produce, so a stored point replays byte-identically.
    """
    def seq(t):
        return None if t is None else [float(x) for x in t]

    data = {
        "value": None if pt.value is None else float(pt.value),
        "mean_jobs": seq(pt.mean_jobs),
        "mean_response_time": seq(pt.mean_response_time),
        "iterations": int(pt.iterations),
        "converged": bool(pt.converged),
        "error": pt.error,
        "sim_mean_jobs": seq(pt.sim_mean_jobs),
        "sim_mean_response_time": seq(pt.sim_mean_response_time),
        "sim_half_width": seq(pt.sim_half_width),
        "delta": seq(pt.delta),
    }
    # Distribution-metric fields only appear when computed, so every
    # pre-distribution store payload keeps its exact historical bytes.
    if pt.metrics is not None:
        data["metrics"] = [seq(row) for row in pt.metrics]
    if pt.dist_kinds is not None:
        data["dist_kinds"] = list(pt.dist_kinds)
    if pt.sim_metrics is not None:
        data["sim_metrics"] = [seq(row) for row in pt.sim_metrics]
    if pt.sim_metric_half_width is not None:
        data["sim_metric_half_width"] = [
            seq(row) for row in pt.sim_metric_half_width]
    return data


def run_point_from_dict(data: dict) -> RunPoint:
    """Rebuild a :class:`RunPoint` from :func:`run_point_to_dict`."""
    def seq(v):
        return None if v is None else tuple(float(x) for x in v)

    def rows(v):
        return None if v is None else tuple(seq(row) for row in v)

    return RunPoint(
        value=None if data.get("value") is None else float(data["value"]),
        mean_jobs=seq(data.get("mean_jobs")),
        mean_response_time=seq(data.get("mean_response_time")),
        iterations=int(data.get("iterations", 0)),
        converged=bool(data.get("converged", True)),
        error=data.get("error"),
        sim_mean_jobs=seq(data.get("sim_mean_jobs")),
        sim_mean_response_time=seq(data.get("sim_mean_response_time")),
        sim_half_width=seq(data.get("sim_half_width")),
        delta=seq(data.get("delta")),
        metrics=rows(data.get("metrics")),
        dist_kinds=(None if data.get("dist_kinds") is None
                    else tuple(str(k) for k in data["dist_kinds"])),
        sim_metrics=rows(data.get("sim_metrics")),
        sim_metric_half_width=rows(data.get("sim_metric_half_width")),
    )


def run_result_to_dict(result: RunResult) -> dict:
    """The *deterministic* JSON form of a run result.

    This is the payload the scenario service stores and replays, so it
    carries only fields that depend on the scenario's result identity:
    the engine, grid metadata, and every point's measures.  Execution
    artifacts — resume/stale counters, the full :class:`SolvedModel` /
    simulator detail — are deliberately excluded: two runs of the same
    scenario must serialize to identical bytes whether they were
    solved cold, resumed from a checkpoint, or assembled shard by
    shard by the service.
    """
    data = {
        "engine": result.engine,
        "parameter": result.parameter,
        "class_names": list(result.class_names),
        "points": [run_point_to_dict(pt) for pt in result.points],
    }
    if result.metric_names is not None:
        data["metric_names"] = list(result.metric_names)
    return data


def run_result_from_dict(data: dict, scenario: Scenario | None = None,
                         ) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`run_result_to_dict`.

    ``scenario`` re-attaches the spec the payload was computed from
    (the service client passes the one it submitted); the solver-side
    extras (``solved``/``sim``/resume counters) are gone for good —
    they never travel.
    """
    metric_names = data.get("metric_names")
    return RunResult(
        scenario=scenario,
        engine=str(data["engine"]),
        parameter=data.get("parameter"),
        class_names=tuple(str(n) for n in data["class_names"]),
        points=[run_point_from_dict(p) for p in data.get("points", [])],
        metric_names=(None if metric_names is None
                      else tuple(str(m) for m in metric_names)),
    )


def _sim_metric_rows(spt: SimPointEstimate | None,
                     selectors: tuple[str, ...] | None,
                     ) -> tuple[tuple | None, tuple | None]:
    """Reshape a sim estimate's per-selector dicts into per-class rows.

    :class:`SimPointEstimate` keys its empirical metrics by selector;
    :class:`RunPoint` stores selector values per class (matching the
    analytic rows), so transpose on the scenario's selector order.
    """
    if (spt is None or selectors is None or spt.metrics is None):
        return None, None
    num_classes = len(spt.mean_jobs)
    est = tuple(tuple(float(spt.metrics[sel][p]) for sel in selectors)
                for p in range(num_classes))
    hw = tuple(tuple(float(spt.metric_half_width[sel][p])
                     for sel in selectors)
               for p in range(num_classes))
    return est, hw


def _combine(value: float | None, apt: SweepPoint | None,
             spt: SimPointEstimate | None,
             selectors: tuple[str, ...] | None = None) -> RunPoint:
    """Fold one grid point's analytic and/or sim output into a RunPoint."""
    delta = None
    if apt is not None and spt is not None and apt.error is None:
        delta = tuple(
            (a - s) / s if s > 0 else float("nan")
            for a, s in zip(apt.mean_jobs, spt.mean_jobs))
    sim_metrics, sim_metric_hw = _sim_metric_rows(spt, selectors)
    return RunPoint(
        value=value,
        mean_jobs=apt.mean_jobs if apt is not None else None,
        mean_response_time=(apt.mean_response_time
                            if apt is not None else None),
        iterations=apt.iterations if apt is not None else 0,
        converged=apt.converged if apt is not None else True,
        error=apt.error if apt is not None else None,
        sim_mean_jobs=spt.mean_jobs if spt is not None else None,
        sim_mean_response_time=(spt.mean_response_time
                                if spt is not None else None),
        sim_half_width=spt.half_width if spt is not None else None,
        delta=delta,
        metrics=apt.metrics if apt is not None else None,
        dist_kinds=apt.dist_kinds if apt is not None else None,
        sim_metrics=sim_metrics,
        sim_metric_half_width=sim_metric_hw,
    )


def _solved_point(solved: SolvedModel,
                  selectors: tuple[str, ...] | None = None) -> SweepPoint:
    point_metrics = dist_kinds = None
    if selectors:
        from repro.metrics import metric_values

        num_classes = len(solved.classes)
        point_metrics = tuple(metric_values(solved, p, selectors)
                              for p in range(num_classes))
        dist_kinds = tuple(solved.distributions(p).kind
                           for p in range(num_classes))
    return SweepPoint(
        value=0.0,
        mean_jobs=tuple(c.mean_jobs for c in solved.classes),
        mean_response_time=tuple(c.mean_response_time
                                 for c in solved.classes),
        iterations=solved.iterations,
        converged=solved.converged,
        metrics=point_metrics,
        dist_kinds=dist_kinds,
    )


def _metric_selectors(scenario: Scenario) -> tuple[str, ...] | None:
    """The scenario's selector tuple, or ``None`` for means-only runs."""
    out = getattr(scenario, "output", None)
    if out is not None and getattr(out, "wants_distributions", False):
        return tuple(out.metrics)
    return None


def _run_sweep(scenario: Scenario) -> RunResult:
    eng = scenario.engine
    axis = scenario.system.axis
    selectors = _metric_selectors(scenario)
    sweep_res = sweep_scenario(scenario) if eng.analytic else None
    sims: list[SimPointEstimate] | None = None
    if eng.simulated:
        sims = [simulate_scenario_point(scenario,
                                        scenario.system.config_for(v))
                for v in axis.values]
    names = (sweep_res.class_names if sweep_res is not None
             else scenario.system.config_for(axis.values[0]).class_names)
    points = [
        _combine(v,
                 sweep_res.points[i] if sweep_res is not None else None,
                 sims[i] if sims is not None else None,
                 selectors)
        for i, v in enumerate(axis.values)
    ]
    return RunResult(
        scenario=scenario, engine=eng.engine, parameter=axis.parameter,
        class_names=names, points=points,
        metric_names=selectors,
        resumed=sweep_res.resumed if sweep_res is not None else 0,
        stale=sweep_res.stale if sweep_res is not None else 0,
    )


def _run_point(scenario: Scenario) -> RunResult:
    eng = scenario.engine
    config = scenario.system.config_for()
    selectors = _metric_selectors(scenario)
    solved = None
    apt = None
    if eng.analytic:
        model_kwargs = eng.model_kwargs()
        if scenario.system.policy is not None:
            model_kwargs["policy"] = scenario.system.policy
        solved = GangSchedulingModel(
            config, **model_kwargs).solve(**eng.solve_kwargs())
        apt = _solved_point(solved, selectors)
    sim_est = (simulate_scenario_point(scenario, config)
               if eng.simulated else None)
    return RunResult(
        scenario=scenario, engine=eng.engine, parameter=None,
        class_names=config.class_names,
        points=[_combine(None, apt, sim_est, selectors)],
        metric_names=selectors,
        solved=solved, sim=sim_est,
    )


def run(scenario: Scenario) -> RunResult:
    """Evaluate one scenario end to end.

    Dispatches on the spec: swept systems go through the sweep driver
    (inheriting checkpointing and worker pools), unswept ones are
    solved/simulated directly; ``both`` runs both engines and reports
    per-class deltas.  When the scenario's output spec names a trace
    file or asks for metrics and no collector is armed yet, the run is
    wrapped in its own observability session.
    """
    out = scenario.output
    arm = ((out.trace is not None or out.collect_metrics)
           and obs_trace.current_tracer() is None and not metrics.enabled())
    if arm:
        obs.start(trace_path=out.trace, collect_metrics=out.collect_metrics)
    policy = scenario.system.policy
    policy_kind = policy.kind if policy is not None else "round-robin"
    try:
        with span("scenario.run", scenario=scenario.name,
                  engine=scenario.engine.engine, policy=policy_kind):
            metrics.inc("scenario.runs", scenario=scenario.name,
                        engine=scenario.engine.engine, policy=policy_kind)
            if scenario.system.axis is not None:
                return _run_sweep(scenario)
            return _run_point(scenario)
    finally:
        if arm:
            obs.stop()
