"""Declarative scenarios: one spec drives solver, simulator, sweeps, CLI.

A :class:`~repro.scenario.spec.Scenario` is a frozen,
JSON-round-trippable description of one experiment — system x engine x
output — and :func:`~repro.scenario.run.run` evaluates it through the
existing pipeline/sweep/simulation machinery:

>>> from repro.scenario import get_scenario, run
>>> result = run(get_scenario("fig4"))
>>> len(result.points) == len(result.values())
True

Presets (:mod:`~repro.scenario.presets`) expose the paper's figures as
named scenarios; :mod:`repro.serialize` round-trips any scenario
through versioned JSON, which is what ``repro-gang run FILE`` consumes.
"""

from repro.scenario.presets import (
    FIGURE_GRIDS,
    GRID_TIERS,
    figure_scenarios,
    get_scenario,
    list_scenarios,
    scenario_names,
)
from repro.scenario.hashing import (
    canonical_bytes,
    point_key,
    scenario_key,
    semantic_scenario_dict,
)
from repro.scenario.run import (
    RunPoint,
    RunResult,
    run,
    run_point_from_dict,
    run_point_to_dict,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.scenario.spec import (
    ENGINES,
    MEASURES,
    SYSTEM_FACTORIES,
    EngineSpec,
    OutputSpec,
    Scenario,
    SweepAxis,
    SystemSpec,
    engine_field_names,
)

__all__ = [
    "Scenario",
    "SystemSpec",
    "EngineSpec",
    "OutputSpec",
    "SweepAxis",
    "ENGINES",
    "MEASURES",
    "SYSTEM_FACTORIES",
    "engine_field_names",
    "run",
    "RunResult",
    "RunPoint",
    "run_point_to_dict",
    "run_point_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "scenario_key",
    "point_key",
    "semantic_scenario_dict",
    "canonical_bytes",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "figure_scenarios",
    "FIGURE_GRIDS",
    "GRID_TIERS",
]
