"""The declarative Scenario spec tree.

A :class:`Scenario` is one complete, serializable experiment
description — *what system*, *which engine(s)*, *what to report* — the
single shape that every consumer (CLI subcommands, the sweep driver,
the simulator front-end, the figure benches) now speaks:

``SystemSpec``
    The system under study: an inline
    :class:`~repro.core.config.SystemConfig` *or* a named preset
    factory (``fig23``, ``fig4``, ``fig5``...) with fixed arguments,
    optionally crossed with a :class:`SweepAxis` (one factory argument
    swept over a grid).
``EngineSpec``
    How to evaluate it: ``analytic`` (the paper's fixed-point model),
    ``sim`` (the discrete-event simulator), or ``both`` (cross-engine
    validation); plus every solver knob the layers below understand —
    fixed-point tolerances, kernel backend, sweep workers and
    checkpoint journal, simulation horizon/seed/replications, and the
    optimizer's evaluation budget.
``OutputSpec``
    What to report: which measures, an optional trace file, metrics.

The tree is frozen and JSON-round-trippable (see
:func:`repro.serialize.scenario_to_dict` /
:func:`~repro.serialize.scenario_from_dict`), which makes "run a new
experiment" a data problem: write a JSON file, feed it to
``repro-gang run`` or :func:`repro.scenario.run`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields

from repro.core.config import SystemConfig
from repro.errors import ValidationError
from repro.policy import SchedulingPolicy, resolve_policy
from repro.workloads.presets import (
    fig1_example_config,
    fig23_config,
    fig4_config,
    fig5_config,
    sp2_like_config,
)

__all__ = [
    "ENGINES",
    "MEASURES",
    "SYSTEM_FACTORIES",
    "SweepAxis",
    "SystemSpec",
    "EngineSpec",
    "OutputSpec",
    "Scenario",
    "engine_field_names",
]

#: Evaluation engines a scenario can request.
ENGINES = ("analytic", "sim", "both")

#: Per-class measures an :class:`OutputSpec` can ask for.
MEASURES = ("mean_jobs", "mean_response_time")

#: Named ``value -> SystemConfig`` factories a :class:`SystemSpec` can
#: reference instead of embedding a full system (the paper's Section 5
#: configurations; see :mod:`repro.workloads.presets`).
SYSTEM_FACTORIES = {
    "fig23": fig23_config,
    "fig4": fig4_config,
    "fig5": fig5_config,
    "fig1_example": fig1_example_config,
    "sp2_like": sp2_like_config,
}


@dataclass(frozen=True)
class SweepAxis:
    """One swept factory argument: ``parameter`` over ``values``."""

    parameter: str
    values: tuple[float, ...]

    def __post_init__(self):
        if not self.parameter:
            raise ValidationError("sweep axis needs a parameter name")
        values = tuple(float(v) for v in self.values)
        if not values:
            raise ValidationError(
                f"sweep axis {self.parameter!r} needs at least one value")
        object.__setattr__(self, "values", values)


@dataclass(frozen=True)
class SystemSpec:
    """The system under study: an inline config or a preset reference.

    Exactly one of ``preset``/``config`` must be given; a sweep
    ``axis`` requires ``preset`` (a fixed inline config has nothing to
    re-parameterize).

    ``policy`` is the scheduling policy shaping the timeplexing cycle.
    ``None`` — and an explicitly-passed default round-robin, which is
    normalized to ``None`` so specs compare and hash identically — means
    the paper's round-robin; anything else threads through the analytic
    solver, the simulator, and the canonical scenario key.
    """

    preset: str | None = None
    args: dict = field(default_factory=dict)
    config: SystemConfig | None = None
    axis: SweepAxis | None = None
    policy: SchedulingPolicy | None = None

    def __post_init__(self):
        if (self.preset is None) == (self.config is None):
            raise ValidationError(
                "SystemSpec needs exactly one of preset= or config=")
        if self.preset is not None and self.preset not in SYSTEM_FACTORIES:
            raise ValidationError(
                f"unknown system preset {self.preset!r}; "
                f"known: {sorted(SYSTEM_FACTORIES)}")
        if self.axis is not None and self.preset is None:
            raise ValidationError(
                "a sweep axis requires a preset system (an inline config "
                "cannot be re-parameterized)")
        if self.policy is not None:
            pol = resolve_policy(self.policy)
            # Round-robin is the absence of a policy: normalizing keeps
            # the canonical hash (and the warm service store) unchanged.
            object.__setattr__(self, "policy",
                               None if pol.is_default else pol)
        object.__setattr__(self, "args", dict(self.args))

    def config_for(self, value: float | None = None) -> SystemConfig:
        """Build the concrete system, at ``value`` on the axis if swept."""
        if self.config is not None:
            return self.config
        kwargs = dict(self.args)
        if self.axis is not None:
            if value is None:
                raise ValidationError(
                    f"swept system needs a value for {self.axis.parameter!r}")
            kwargs[self.axis.parameter] = value
        return SYSTEM_FACTORIES[self.preset](**kwargs)


@dataclass(frozen=True)
class EngineSpec:
    """Which engine(s) to run and every knob they understand.

    The analytic fields mirror
    :class:`~repro.core.fixed_point.FixedPointOptions`; the sim fields
    mirror the simulator front-end in :mod:`repro.sim.runner`;
    ``max_evaluations`` is the optimizer's solve budget
    (:func:`repro.core.optimize.optimize_quantum`).  The CLI derives
    every subcommand's engine flags from these fields (one schema, no
    parity drift — see ``repro.cli.ENGINE_FLAGS``).
    """

    engine: str = "analytic"
    # Analytic solver knobs.
    backend: str = "auto"
    reduction: str = "moments2"
    rmatrix_method: str = "logreduction"
    max_iterations: int = 200
    tol: float = 1e-5
    heavy_traffic_only: bool = False
    #: Wall-clock budget in seconds for each R-matrix solve (threaded
    #: into the :class:`~repro.resilience.fallback.RetryPolicy` of the
    #: resilience chain; the check fires mid-attempt).  ``None``
    #: disables the clock.
    solve_budget: float | None = None
    # Sweep execution knobs.
    workers: int | None = None
    checkpoint: str | None = None
    #: Batched sweep chunk width: solve up to this many adjacent grid
    #: points at once through :mod:`repro.workloads.batched` (stacked
    #: BLAS, continuation warm-starts, adaptive backend crossover).
    #: ``0`` (default) and ``1`` keep the per-point path.  Unlike
    #: ``workers``, this knob participates in the scenario's semantic
    #: hash: continuation changes which warm starts each point sees.
    batch_points: int = 0
    # Simulation knobs.
    horizon: float = 20_000.0
    seed: int = 0
    replications: int = 1
    warmup_fraction: float = 0.1
    # Optimizer budget.
    max_evaluations: int = 60

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValidationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.replications < 1:
            raise ValidationError(
                f"replications must be >= 1, got {self.replications}")
        if self.horizon <= 0:
            raise ValidationError(f"horizon must be > 0, got {self.horizon}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValidationError(
                f"warmup_fraction must lie in [0, 1), got {self.warmup_fraction}")
        if self.max_evaluations < 1:
            raise ValidationError(
                f"max_evaluations must be >= 1, got {self.max_evaluations}")
        if self.solve_budget is not None and self.solve_budget <= 0:
            raise ValidationError(
                f"solve_budget must be > 0 seconds, got {self.solve_budget}")
        if self.batch_points < 0:
            raise ValidationError(
                f"batch_points must be >= 0, got {self.batch_points}")

    @property
    def analytic(self) -> bool:
        return self.engine in ("analytic", "both")

    @property
    def simulated(self) -> bool:
        return self.engine in ("sim", "both")

    def model_kwargs(self) -> dict:
        """Keyword arguments for :class:`~repro.core.model.GangSchedulingModel`."""
        kwargs = {"backend": self.backend, "reduction": self.reduction,
                  "rmatrix_method": self.rmatrix_method}
        if self.solve_budget is not None:
            from repro.resilience.fallback import DEFAULT_POLICY
            retry = dataclasses.replace(DEFAULT_POLICY.retry,
                                        wall_clock_budget=self.solve_budget)
            kwargs["resilience"] = dataclasses.replace(DEFAULT_POLICY,
                                                       retry=retry)
        return kwargs

    def solve_kwargs(self) -> dict:
        """Keyword arguments for ``GangSchedulingModel.solve``."""
        return {"max_iterations": self.max_iterations, "tol": self.tol,
                "heavy_traffic_only": self.heavy_traffic_only}

    @property
    def warmup(self) -> float:
        """Simulation warmup time implied by the horizon."""
        return self.horizon * self.warmup_fraction


@dataclass(frozen=True)
class OutputSpec:
    """What to report: measures, metric selectors, observability.

    ``metrics`` names the response-time statistics to report per class
    — ``("mean",)`` by default, extendable with quantile and tail
    selectors such as ``("mean", "p95", "p99", "tail@2.5")`` (see
    :mod:`repro.metrics.selectors`).  Anything beyond the default
    makes the engines extract per-class response-time *distributions*
    alongside the scalar measures.

    ``collect_metrics`` arms the in-process observability registry
    (the CLI's ``--metrics`` flag; historically this field was the
    boolean ``metrics``, which is still accepted and coerced).
    """

    measures: tuple[str, ...] = ("mean_jobs", "mean_response_time")
    trace: str | None = None
    metrics: tuple[str, ...] = ("mean",)
    collect_metrics: bool = False

    def __post_init__(self):
        measures = tuple(str(m) for m in self.measures)
        unknown = [m for m in measures if m not in MEASURES]
        if unknown:
            raise ValidationError(
                f"unknown measures {unknown}; known: {list(MEASURES)}")
        object.__setattr__(self, "measures", measures)
        metrics = self.metrics
        if isinstance(metrics, bool):
            # Legacy schema: ``metrics`` was the observability toggle.
            object.__setattr__(self, "collect_metrics",
                               bool(self.collect_metrics) or metrics)
            metrics = ("mean",)
        else:
            metrics = tuple(str(m) for m in metrics)
            if not metrics:
                metrics = ("mean",)
            from repro.metrics.selectors import parse_metrics
            parse_metrics(metrics)      # validate, reject duplicates
        object.__setattr__(self, "metrics", metrics)

    @property
    def wants_distributions(self) -> bool:
        """Whether any selector needs more than the scalar means."""
        return any(m != "mean" for m in self.metrics)


@dataclass(frozen=True)
class Scenario:
    """One complete experiment: system x engine x output."""

    name: str
    system: SystemSpec
    engine: EngineSpec = EngineSpec()
    output: OutputSpec = OutputSpec()
    description: str = ""

    @property
    def axis(self) -> SweepAxis | None:
        return self.system.axis

    @property
    def parameter(self) -> str | None:
        """Display name of the swept quantity (``None`` if unswept)."""
        return self.system.axis.parameter if self.system.axis else None

    def grid(self) -> tuple[float, ...] | None:
        return self.system.axis.values if self.system.axis else None

    def with_engine(self, **overrides) -> "Scenario":
        """A copy with engine fields replaced (``None`` values ignored).

        The CLI adapters use this to layer flag overrides on top of a
        preset or file-loaded scenario without disturbing its other
        knobs.
        """
        overrides = {k: v for k, v in overrides.items() if v is not None}
        if not overrides:
            return self
        return dataclasses.replace(
            self, engine=dataclasses.replace(self.engine, **overrides))

    def with_output(self, **overrides) -> "Scenario":
        """A copy with output fields replaced (``None`` values ignored)."""
        overrides = {k: v for k, v in overrides.items() if v is not None}
        if not overrides:
            return self
        return dataclasses.replace(
            self, output=dataclasses.replace(self.output, **overrides))

    def with_grid(self, values) -> "Scenario":
        """A copy swept over different grid values (requires an axis)."""
        if self.system.axis is None:
            raise ValidationError(
                f"scenario {self.name!r} has no sweep axis to re-grid")
        axis = SweepAxis(self.system.axis.parameter,
                         tuple(float(v) for v in values))
        return dataclasses.replace(
            self, system=dataclasses.replace(self.system, axis=axis))

    def with_policy(self, policy: SchedulingPolicy | None) -> "Scenario":
        """A copy evaluated under a different scheduling policy.

        ``None`` leaves the scenario untouched (flag not given); an
        explicit round-robin is normalized away by ``SystemSpec``.
        """
        if policy is None:
            return self
        return dataclasses.replace(
            self, system=dataclasses.replace(self.system, policy=policy))


def engine_field_names() -> tuple[str, ...]:
    """The :class:`EngineSpec` field names (the shared CLI flag schema)."""
    return tuple(f.name for f in fields(EngineSpec))
