"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
(``TypeError`` and friends are still raised directly for misuse of the
API surface itself).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "NotAGeneratorError",
    "NotStochasticError",
    "NotAPhaseTypeError",
    "UnstableSystemError",
    "ConvergenceError",
    "SolverBudgetExceededError",
    "CheckpointError",
    "ReducibleChainError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An input failed structural validation (shape, sign, normalization)."""


class NotAGeneratorError(ValidationError):
    """A matrix claimed to be a CTMC generator is not one.

    A generator (infinitesimal rate) matrix must be square, have
    non-negative off-diagonal entries, and have rows that sum to zero
    (to within tolerance).
    """


class NotStochasticError(ValidationError):
    """A matrix claimed to be a (sub)stochastic matrix is not one."""


class NotAPhaseTypeError(ValidationError):
    """A pair ``(alpha, S)`` is not a valid phase-type representation.

    ``S`` must be a sub-generator: non-negative off-diagonals, strictly
    non-positive diagonal, row sums ``<= 0``, and it must be invertible
    (all phases transient).  ``alpha`` must be a sub-probability vector.
    """


class UnstableSystemError(ReproError):
    """The queueing system is unstable (drift condition violated).

    Raised when the mean drift of the repeating portion of a QBD is
    non-negative, i.e. ``y A0 e >= y A2 e`` (Theorem 4.4 of the paper),
    so no stationary distribution exists.
    """

    def __init__(self, message: str, *, drift: float | None = None):
        super().__init__(message)
        #: Upward minus downward mean drift ``y A0 e - y A2 e``; positive
        #: (or zero) values indicate instability.  ``None`` if unknown.
        self.drift = drift


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        #: Number of iterations performed before giving up.
        self.iterations = iterations
        #: Final residual / change measure when the budget ran out.
        self.residual = residual


class SolverBudgetExceededError(ConvergenceError):
    """A resilient solve ran out of its iteration or wall-clock budget.

    Raised by :mod:`repro.resilience.fallback` when the combined
    retry/fallback attempts exhaust the caller's
    :class:`~repro.resilience.fallback.RetryPolicy` budgets before any
    method produces an acceptable solution.  Inherits the
    ``iterations``/``residual`` diagnostics of
    :class:`ConvergenceError` and adds the budget bookkeeping.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None,
                 elapsed: float | None = None,
                 budget: float | None = None):
        super().__init__(message, iterations=iterations, residual=residual)
        #: Wall-clock seconds spent before giving up (``None`` if the
        #: iteration budget, not the clock, was the binding constraint).
        self.elapsed = elapsed
        #: The budget that was exceeded (seconds or iterations,
        #: matching whichever constraint fired).
        self.budget = budget


class CheckpointError(ReproError):
    """A sweep checkpoint journal is unusable.

    Raised when a journal's header does not match the sweep being
    resumed (different parameter or class names) — resuming would mix
    results from incompatible runs.  Truncated trailing records (the
    crash case) are *not* an error; they are dropped on load.
    """


class ReducibleChainError(ReproError):
    """A Markov chain expected to be irreducible is not.

    The stationary distribution of a reducible chain is not unique; the
    caller must restrict to a recurrent class first.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
