#!/usr/bin/env python
"""Fail CI when a smoke bench regresses >20% in wall clock.

Compares freshly generated ``BENCH_*.json`` files against the committed
baselines.  Every bench payload carries two wall-clock fields: the
optimized path (``pipeline_seconds``) and an unoptimized reference run
(``seed_seconds``) measured in the same process on the same machine.
The reference run doubles as a host-speed probe: a CI runner that is
uniformly 2x slower than the laptop that committed the baseline slows
both numbers equally, so by default the gate trips on the *calibrated*
ratio

    (current pipeline / baseline pipeline)
        / (current seed / baseline seed)

which cancels host speed and isolates real regressions of the
optimized path.  Pass ``--absolute`` to gate on the raw wall-clock
ratio instead (meaningful when baseline and current ran on identical
hardware).

Usage::

    python scripts/bench_compare.py --baseline /tmp/bench-baseline \
        --current benchmarks/results [--threshold 0.20] [--absolute]

Exit status 1 on any regression beyond the threshold (or if no bench
pairs were found at all).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

WALL_CLOCK_FIELD = "pipeline_seconds"
REFERENCE_FIELD = "seed_seconds"


def load(path: pathlib.Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def compare_one(name: str, base: dict, cur: dict, *,
                threshold: float, absolute: bool) -> bool:
    """Print one comparison line; return True when within budget."""
    base_wall = float(base[WALL_CLOCK_FIELD])
    cur_wall = float(cur[WALL_CLOCK_FIELD])
    if base_wall <= 0:
        print(f"  {name}: baseline wall clock is {base_wall}; skipping")
        return True
    raw = cur_wall / base_wall

    host = None
    base_ref = float(base.get(REFERENCE_FIELD, 0.0) or 0.0)
    cur_ref = float(cur.get(REFERENCE_FIELD, 0.0) or 0.0)
    if base_ref > 0 and cur_ref > 0:
        host = cur_ref / base_ref

    if absolute or host is None:
        ratio, mode = raw, "absolute"
    else:
        ratio, mode = raw / host, "calibrated"

    ok = ratio <= 1.0 + threshold
    verdict = "ok" if ok else f"REGRESSION (> {threshold:.0%})"
    host_txt = f"host x{host:.2f}" if host is not None else "host n/a"
    print(f"  {name}: {base_wall:.3f}s -> {cur_wall:.3f}s  "
          f"raw x{raw:.2f}  {host_txt}  {mode} x{ratio:.2f}  {verdict}")
    return ok


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", type=pathlib.Path, required=True,
                    help="directory holding the committed BENCH_*.json")
    ap.add_argument("--current", type=pathlib.Path,
                    default=pathlib.Path("benchmarks/results"),
                    help="directory holding the fresh BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("--absolute", action="store_true",
                    help="gate on raw wall clock, no host-speed calibration")
    args = ap.parse_args(argv)

    baselines = sorted(args.baseline.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline}",
              file=sys.stderr)
        return 1

    print(f"bench regression gate: threshold {args.threshold:.0%}, "
          f"{'absolute' if args.absolute else 'host-calibrated'} wall clock")
    failed, compared = [], 0
    for base_path in baselines:
        cur_path = args.current / base_path.name
        if not cur_path.exists():
            print(f"  {base_path.name}: no current run found "
                  f"({cur_path}); FAIL")
            failed.append(base_path.name)
            continue
        compared += 1
        if not compare_one(base_path.name, load(base_path), load(cur_path),
                           threshold=args.threshold, absolute=args.absolute):
            failed.append(base_path.name)

    if compared == 0:
        print("no bench pairs compared", file=sys.stderr)
        return 1
    if failed:
        print(f"wall-clock regression in: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"{compared} bench file(s) within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
