#!/usr/bin/env python
"""CI smoke for the scenario service daemon.

Starts a real ``repro-gang serve`` subprocess and drives it through the
service's whole robustness contract:

1. replay every checked-in ``scenarios/*.json`` through the daemon
   (cold pass: everything solves);
2. SIGKILL the daemon (and its worker group) mid-sweep;
3. restart it on the same store and assert the interrupted sweep
   completes;
4. replay the scenario files again — the warm pass must be served
   entirely from the store: the ``service.shards{source=solve}``
   counter must not move (zero cold solves);
5. request a preset with distribution metric selectors
   (``metrics=["mean", "p99"]``) and assert the reply carries the new
   per-class percentile columns end to end (stored result included);
6. shut the daemon down cleanly so its trace file (uploaded as a CI
   artifact) closes with the final metrics snapshot;
7. restart once more as an HTTP front end with a structured log and
   curl the operable surface: ``GET /healthz`` must be 200 ok,
   ``POST /`` must serve a warm request, ``GET /metrics`` must parse
   as Prometheus text, ``GET /stats`` must remember the request, and
   the log must cover start -> request.done -> stop.

Exits nonzero on the first violation.
"""

import argparse
import json
import os
import queue
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
sys.path.insert(0, str(SRC))


class Daemon:
    """A scenario-service daemon subprocess driven over stdio JSONL."""

    def __init__(self, store, *, workers=2, trace=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        argv = [sys.executable, "-m", "repro", "serve",
                "--store", str(store), "--workers", str(workers)]
        if trace:
            argv += ["--trace", str(trace)]
        self.proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=env, start_new_session=True)
        self._lines = queue.Queue()
        threading.Thread(target=self._pump, daemon=True).start()
        banner = self.read(timeout=120)
        assert banner["status"] == "ready", banner

    def _pump(self):
        for line in self.proc.stdout:
            self._lines.put(line)

    def send(self, obj):
        self.proc.stdin.write(json.dumps(obj) + "\n")
        self.proc.stdin.flush()

    def read(self, timeout=900):
        return json.loads(self._lines.get(timeout=timeout))

    def request(self, obj, timeout=900):
        self.send(obj)
        return self.read(timeout=timeout)

    def solve_counter(self):
        stats = self.request({"id": "m", "op": "stats"}, timeout=60)
        return stats["metrics"]["counters"].get(
            "service.shards{source=solve}", 0.0)

    def kill_group(self):
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.proc.wait(timeout=10)

    def shutdown(self):
        try:
            reply = self.request({"id": "bye", "op": "shutdown"},
                                 timeout=60)
            assert reply["op"] == "shutdown", reply
            self.proc.wait(timeout=60)
        finally:
            self.kill_group()


class HttpDaemon:
    """A ``serve --http`` subprocess driven over urllib."""

    def __init__(self, store, *, workers=0, log=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        argv = [sys.executable, "-m", "repro", "serve",
                "--store", str(store), "--workers", str(workers),
                "--http", "0"]
        if log:
            argv += ["--log", str(log)]
        self.proc = subprocess.Popen(
            argv, stderr=subprocess.PIPE, text=True, env=env,
            start_new_session=True)
        self.base = None
        for line in self.proc.stderr:   # the port is kernel-assigned
            match = re.search(r"serving HTTP on ([\w.]+):(\d+)", line)
            if match:
                self.base = f"http://{match.group(1)}:{match.group(2)}"
                break
        assert self.base, "no HTTP banner before stderr closed"
        threading.Thread(target=self._drain, daemon=True).start()

    def _drain(self):
        for _ in self.proc.stderr:
            pass

    def get(self, path, timeout=60):
        try:
            with urllib.request.urlopen(self.base + path,
                                        timeout=timeout) as resp:
                return (resp.status, resp.read().decode("utf-8"),
                        resp.headers.get("Content-Type", ""))
        except urllib.error.HTTPError as err:
            return (err.code, err.read().decode("utf-8"),
                    err.headers.get("Content-Type", ""))

    def post(self, obj, timeout=900):
        req = urllib.request.Request(
            self.base + "/", data=json.dumps(obj).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def kill_group(self):
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.proc.wait(timeout=10)


def point_records(store):
    """Count durable per-point records across the store's segments."""
    count = 0
    for segment in Path(store).glob("seg-*.jsonl"):
        for line in segment.read_text().splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue            # torn tail; not durable
            if record.get("kind") == "point":
                count += 1
    return count


def check(condition, what, reply=None):
    if not condition:
        print(f"FAIL: {what}", file=sys.stderr)
        if reply is not None:
            print(json.dumps(reply, indent=2)[:2000], file=sys.stderr)
        sys.exit(1)
    print(f"ok: {what}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=None,
                        help="store directory (default: a temp dir)")
    parser.add_argument("--trace", default=None,
                        help="trace file for the restarted daemon")
    parser.add_argument("--log", default=None,
                        help="structured log for the HTTP-phase daemon")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()
    store = args.store or tempfile.mkdtemp(prefix="repro-store-")

    files = sorted((ROOT / "scenarios").glob("*.json"))
    check(files, f"found {len(files)} checked-in scenario files")
    requests = [{"id": path.stem,
                 "scenario": json.loads(path.read_text()),
                 "timeout": 900}
                for path in files]
    # A sweep whose grid points the scenario files have *not* already
    # stored, so the SIGKILL lands mid-solve rather than mid-cache-hit.
    interrupted = {"id": "interrupted", "preset": "fig3",
                   "grid": "quick", "timeout": 900}

    # -- cold pass, then SIGKILL mid-sweep ----------------------------
    daemon = Daemon(store, workers=args.workers)
    try:
        for request in requests:
            reply = daemon.request(request)
            check(reply["status"] == "ok" and reply["error_points"] == 0,
                  f"cold solve of {request['id']}", reply)
            check(not reply["cached"],
                  f"{request['id']} was a cold solve", reply)
        # Kill only after at least one shard of the new sweep has been
        # durably persisted — a deterministic "mid-sweep", not a race.
        base = point_records(store)
        daemon.send(interrupted)
        give_up = time.time() + 120
        while point_records(store) <= base and time.time() < give_up:
            time.sleep(0.1)
        check(point_records(store) > base,
              "a shard persisted while the sweep was still running")
    finally:
        daemon.kill_group()
    print("ok: daemon SIGKILLed mid-sweep")

    # -- restart on the same store ------------------------------------
    daemon = Daemon(store, workers=args.workers, trace=args.trace)
    try:
        reply = daemon.request(interrupted)
        check(reply["status"] == "ok" and reply["error_points"] == 0,
              "interrupted sweep completed after restart", reply)
        check(reply["cached"] or reply["store_points"] > 0,
              "replay resumed from the persisted shard prefix", reply)

        # -- warm pass: zero cold solves ------------------------------
        before = daemon.solve_counter()
        for request in requests:
            reply = daemon.request(request)
            check(reply["status"] == "ok" and reply["cached"],
                  f"warm replay of {request['id']} store-served", reply)
        after = daemon.solve_counter()
        check(after == before,
              f"zero cold solves on the warm pass "
              f"(solve counter {before} -> {after})")

        # -- distribution metrics flow through the daemon -------------
        import dataclasses

        from repro.scenario import get_scenario, run_result_from_dict
        from repro.serialize import scenario_to_dict

        base = get_scenario("fig2", grid="quick")
        slim = dataclasses.replace(
            base,
            system=dataclasses.replace(
                base.system,
                axis=dataclasses.replace(base.system.axis,
                                         values=(1.0, 2.0, 4.5))),
            output=base.output.__class__(measures=base.output.measures,
                                         metrics=("mean", "p99")))
        reply = daemon.request({"id": "p99",
                                "scenario": scenario_to_dict(slim),
                                "timeout": 900})
        check(reply["status"] == "ok" and reply["error_points"] == 0,
              "preset with metrics=['mean', 'p99'] solved", reply)
        result = reply["result"]
        check(result.get("metric_names") == ["mean", "p99"],
              "reply result names its metric columns",
              sorted(result.keys()))
        check(all(pt.get("metrics") and pt.get("dist_kinds")
                  for pt in result["points"]),
              "every point carries per-class metric rows")
        table = run_result_from_dict(result).metrics_table().render()
        check("p99[" in table and "mean[" in table,
              "report table grew the per-class percentile columns")
        daemon.shutdown()
    finally:
        daemon.kill_group()

    # -- HTTP front end: the operable surface -------------------------
    from repro.obs.prom import parse_exposition

    log_path = Path(args.log) if args.log else Path(store) / "service.log"
    http = HttpDaemon(store, log=log_path)
    try:
        code, body, _ = http.get("/healthz")
        health = json.loads(body)
        check(code == 200 and health["status"] == "ok",
              "GET /healthz is 200 ok", health)
        reply = http.post({"id": "http1",
                           "scenario": requests[0]["scenario"],
                           "timeout": 900})
        check(reply["status"] == "ok" and reply["cached"],
              "POST / served the warm scenario from the store", reply)
        code, body, ctype = http.get("/metrics")
        check(code == 200 and ctype.startswith("text/plain"),
              "GET /metrics is Prometheus text")
        families = parse_exposition(body)
        check(families["repro_service_up"]["samples"][0][2] == 1.0,
              "exposition parses and service_up gauge reads 1")
        totals = {labels.get("status"): value for _, labels, value
                  in families["repro_service_requests_total"]["samples"]}
        check(totals.get("cached", 0) >= 1,
              "request counter moved on the cached reply", totals)
        code, body, _ = http.get("/stats")
        stats = json.loads(body)
        check(stats["recent"]
              and stats["recent"][-1]["request_id"] == "http1.1",
              "GET /stats ring remembers the request", stats.get("recent"))
        reply = http.post({"id": "bye", "op": "shutdown"}, timeout=60)
        check(reply["op"] == "shutdown", "HTTP shutdown acknowledged",
              reply)
        http.proc.wait(timeout=60)
        check(http.proc.returncode == 0, "HTTP daemon exited cleanly")
        events = [json.loads(line)["event"]
                  for line in log_path.read_text().splitlines()]
        check(events[0] == "service.start" and events[-1] == "service.stop"
              and "request.done" in events,
              "structured log covers the request lifecycle", events)
    finally:
        http.kill_group()
    print("service smoke: all checks passed")


if __name__ == "__main__":
    main()
